//! Record/replay harness pinning dispatcher behavior.
//!
//! PR 1 made the whole batch-dispatch pipeline parallel and promised
//! determinism regardless of worker count; this module turns that promise
//! into an enforced invariant.  A [`TraceRecorder`] hooks into the simulator
//! (see [`Simulator::run_recorded`](crate::Simulator::run_recorded)) and
//! captures, per batch, the released requests, the full pre-dispatch fleet
//! state and the dispatch outcome (assignments, post-dispatch fleet state,
//! scratch-counter deltas).  [`replay_trace`] re-feeds the recorded batches
//! to any [`Dispatcher`] through a fresh
//! [`DispatchContext`](crate::DispatchContext) and diffs the outcomes batch
//! by batch into a structured [`DriftReport`] (first divergent batch,
//! per-field deltas).
//!
//! # The replay invariant
//!
//! A recorded trace must replay **bit-identically** — same assignment lists,
//! same committed schedules, same scratch counters — against the same
//! dispatcher on the same road network, *regardless of the worker-thread
//! count* and across processes.  Because every batch starts from the
//! recorded pre-dispatch fleet state, a divergence cannot cascade: the
//! report pins the exact batch (and field) where a refactored dispatcher
//! first drifts from the recorded behavior.  Shortest-path *query counts*
//! are deliberately excluded from the diff — under concurrency two workers
//! may race on the same missing cache key and both consult the index (see
//! `structride_roadnet::engine`), which perturbs the counters but never the
//! decisions.  The one bundled dispatcher exempt from the invariant is
//! TicketAssign+, whose commit-order races are the algorithm under study.
//!
//! Traces serialize to a versioned, line-oriented text format whose floats
//! round-trip exactly (Rust's shortest-representation formatting), so a
//! trace recorded on one machine replays bit-identically on another.

use crate::config::StructRideConfig;
use crate::context::{DispatchContext, ScratchStats};
use crate::dispatcher::{BatchOutcome, Dispatcher, PendingSnapshot};
use std::fmt;
use std::str::FromStr;
use structride_model::{Request, RequestId, Schedule, Vehicle, Waypoint, WaypointKind};
use structride_roadnet::{
    CongestionZone, SpEngine, SpStats, TrafficConfig, TrafficProfile, MAX_TRAFFIC_ZONES,
};
use structride_sharegraph::builder::BuildStats;

/// Magic first line of the v1 trace text format (pre-prescreen: 3-token
/// outcome lines, no `prescreen_pruned` counter).
const TRACE_HEADER_V1: &str = "structride-trace v1";

/// Magic first line of the v2 trace text format, whose outcome lines carry
/// the `prescreen_pruned` scratch counter.
const TRACE_HEADER_V2: &str = "structride-trace v2";

/// Magic first line of the v3 trace text format, whose config line
/// additionally records the traffic model (profile, epoch granularity,
/// congestion zones).  v1/v2 traces parse with the static
/// [`TrafficConfig::default`] and replay bit-identically.
const TRACE_HEADER_V3: &str = "structride-trace v3";

/// Magic first line of the current (v4) trace text format, whose config line
/// additionally records the fault-injection model (outage cadence, solver
/// budget, checkpoint cadence).  v1/v2/v3 traces parse with the inert
/// [`FaultConfig::default`](crate::faults::FaultConfig) and replay
/// bit-identically.
const TRACE_HEADER_V4: &str = "structride-trace v4";

/// The trace format version new recordings are written at.
const TRACE_VERSION: u32 = 4;

/// A plain-data snapshot of one [`Vehicle`], captured before and after each
/// dispatch call.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleState {
    /// Vehicle identifier.
    pub id: u32,
    /// Seat capacity.
    pub capacity: u32,
    /// Node the vehicle plans from.
    pub node: u32,
    /// Time the vehicle is free at `node`.
    pub free_at: f64,
    /// Riders currently on board.
    pub onboard: u32,
    /// Travel time accumulated by executed way-points.
    pub executed_travel: f64,
    /// Requests assigned so far.
    pub assigned: Vec<RequestId>,
    /// Requests fully served so far.
    pub completed: Vec<RequestId>,
    /// The planned, not-yet-executed schedule.
    pub schedule: Vec<Waypoint>,
}

impl VehicleState {
    /// Captures the state of `vehicle`.
    pub fn capture(vehicle: &Vehicle) -> Self {
        VehicleState {
            id: vehicle.id,
            capacity: vehicle.capacity,
            node: vehicle.node,
            free_at: vehicle.free_at,
            onboard: vehicle.onboard,
            executed_travel: vehicle.executed_travel,
            assigned: vehicle.assigned.clone(),
            completed: vehicle.completed.clone(),
            schedule: vehicle.schedule.waypoints().to_vec(),
        }
    }

    /// Reconstructs a [`Vehicle`] in exactly this state.
    pub fn restore(&self) -> Vehicle {
        let mut v = Vehicle::new(self.id, self.node, self.capacity);
        v.free_at = self.free_at;
        v.onboard = self.onboard;
        v.executed_travel = self.executed_travel;
        v.assigned = self.assigned.clone();
        v.completed = self.completed.clone();
        v.schedule = Schedule::from_waypoints(self.schedule.clone());
        v
    }
}

/// Everything recorded about one batch: the inputs the dispatcher saw and
/// the outcome it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Zero-based batch index within the run.
    pub index: usize,
    /// Simulation time at the end of the batch window.
    pub now: f64,
    /// Requests released during this batch window, in dispatch order.
    pub requests: Vec<Request>,
    /// Fleet state after movement, immediately before the dispatch call.
    pub fleet_before: Vec<VehicleState>,
    /// Request ids the dispatcher assigned in this batch.
    pub assigned: Vec<RequestId>,
    /// Fleet state immediately after the dispatch call.
    pub fleet_after: Vec<VehicleState>,
    /// Scratch-counter snapshot after the dispatch call.
    pub scratch: ScratchStats,
}

/// Run-level metadata stored alongside the recorded batches.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Trace format version (1 = pre-prescreen, 2 = current).  Set from the
    /// header on parse; [`TraceMeta::new`] stamps the current version.
    /// [`replay_trace`] only compares the scratch counters whose semantics
    /// the recorded version actually pins (see the field docs there).
    pub version: u32,
    /// Name of the dispatcher that produced the trace.
    pub algorithm: String,
    /// Workload name (as passed to the simulator).
    pub workload: String,
    /// The framework configuration the run used (also used by replay).
    pub config: StructRideConfig,
    /// Free-form key/value pairs — the bench harness stores the workload
    /// generation parameters here so `replay` can regenerate the road
    /// network without shipping it inside the trace.
    pub params: Vec<(String, String)>,
    /// Shortest-path engine counters at the end of the recording
    /// (informational: query *counts* are excluded from the drift diff, see
    /// the module docs).
    pub sp_stats: Option<SpStats>,
    /// Shareability-graph build counters at the end of the recording, when
    /// the recorded dispatcher exposes them (SARD).
    pub build_stats: Option<BuildStats>,
}

impl Default for TraceMeta {
    fn default() -> Self {
        TraceMeta {
            version: TRACE_VERSION,
            algorithm: String::new(),
            workload: String::new(),
            config: StructRideConfig::default(),
            params: Vec::new(),
            sp_stats: None,
            build_stats: None,
        }
    }
}

impl TraceMeta {
    /// Creates metadata for a run of `algorithm` on `workload`.
    pub fn new(
        algorithm: impl Into<String>,
        workload: impl Into<String>,
        config: StructRideConfig,
    ) -> Self {
        TraceMeta {
            version: TRACE_VERSION,
            algorithm: algorithm.into(),
            workload: workload.into(),
            config,
            params: Vec::new(),
            sp_stats: None,
            build_stats: None,
        }
    }

    /// Looks up a free-form parameter by key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A recorded run: metadata plus one [`BatchRecord`] per dispatched batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run-level metadata.
    pub meta: TraceMeta,
    /// The recorded batches, in dispatch order.
    pub batches: Vec<BatchRecord>,
}

/// Records `(batch, fleet-state, outcome)` tuples while the simulator runs.
///
/// Hand one to [`Simulator::run_recorded`](crate::Simulator::run_recorded),
/// or drive it manually via [`TraceRecorder::batch_started`] /
/// [`TraceRecorder::batch_finished`] from a custom batch loop.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    batches: Vec<BatchRecord>,
    pending: Option<BatchRecord>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed batch records.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Captures the inputs of a batch about to be dispatched.
    pub fn batch_started(
        &mut self,
        index: usize,
        now: f64,
        requests: &[Request],
        fleet: &[Vehicle],
    ) {
        debug_assert!(self.pending.is_none(), "previous batch was never finished");
        self.pending = Some(BatchRecord {
            index,
            now,
            requests: requests.to_vec(),
            fleet_before: fleet.iter().map(VehicleState::capture).collect(),
            assigned: Vec::new(),
            fleet_after: Vec::new(),
            scratch: ScratchStats::default(),
        });
    }

    /// Captures the outcome of the batch opened by the last
    /// [`TraceRecorder::batch_started`] call.
    pub fn batch_finished(
        &mut self,
        outcome: &BatchOutcome,
        fleet: &[Vehicle],
        scratch: ScratchStats,
    ) {
        let mut record = self
            .pending
            .take()
            .expect("batch_finished without batch_started");
        record.assigned = outcome.assigned.clone();
        record.fleet_after = fleet.iter().map(VehicleState::capture).collect();
        record.scratch = scratch;
        self.batches.push(record);
    }

    /// Consumes the recorder into a [`Trace`] with the given metadata.
    pub fn into_trace(self, meta: TraceMeta) -> Trace {
        debug_assert!(self.pending.is_none(), "last batch was never finished");
        Trace {
            meta,
            batches: self.batches,
        }
    }
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

/// One field that differed between the recorded and the replayed outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDelta {
    /// Dotted path of the differing field (e.g. `vehicle[3].schedule`).
    pub field: String,
    /// The recorded value, rendered for display.
    pub recorded: String,
    /// The replayed value, rendered for display.
    pub replayed: String,
}

/// All deltas observed in one divergent batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDivergence {
    /// Index of the divergent batch.
    pub batch_index: usize,
    /// The differing fields.
    pub deltas: Vec<FieldDelta>,
}

/// The outcome of replaying a trace: either clean, or a batch-by-batch list
/// of divergences.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftReport {
    /// Number of batches replayed and compared.
    pub batches_compared: usize,
    /// Batches whose replayed outcome differed from the recording.
    pub divergences: Vec<BatchDivergence>,
}

impl DriftReport {
    /// True when every batch replayed bit-identically.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// The first divergent batch, if any.
    pub fn first_divergence(&self) -> Option<&BatchDivergence> {
        self.divergences.first()
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "replay clean: {} batches, zero drift",
                self.batches_compared
            );
        }
        writeln!(
            f,
            "replay DRIFTED: {} of {} batches diverged (first at batch {})",
            self.divergences.len(),
            self.batches_compared,
            self.divergences[0].batch_index
        )?;
        for div in &self.divergences {
            writeln!(f, "  batch {}:", div.batch_index)?;
            for delta in &div.deltas {
                writeln!(
                    f,
                    "    {}: recorded {} != replayed {}",
                    delta.field, delta.recorded, delta.replayed
                )?;
            }
        }
        Ok(())
    }
}

fn fmt_ids(ids: &[RequestId]) -> String {
    let strs: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
    format!("[{}]", strs.join(","))
}

fn fmt_schedule(wps: &[Waypoint]) -> String {
    let strs: Vec<String> = wps.iter().map(waypoint_to_token).collect();
    format!("[{}]", strs.join(";"))
}

fn diff_vehicle(deltas: &mut Vec<FieldDelta>, recorded: &VehicleState, replayed: &VehicleState) {
    let prefix = format!("vehicle[{}]", recorded.id);
    let mut push = |field: &str, rec: String, rep: String| {
        deltas.push(FieldDelta {
            field: format!("{prefix}.{field}"),
            recorded: rec,
            replayed: rep,
        });
    };
    if recorded.id != replayed.id {
        push("id", recorded.id.to_string(), replayed.id.to_string());
    }
    if recorded.capacity != replayed.capacity {
        push(
            "capacity",
            recorded.capacity.to_string(),
            replayed.capacity.to_string(),
        );
    }
    if recorded.node != replayed.node {
        push("node", recorded.node.to_string(), replayed.node.to_string());
    }
    if recorded.free_at.to_bits() != replayed.free_at.to_bits() {
        push(
            "free_at",
            recorded.free_at.to_string(),
            replayed.free_at.to_string(),
        );
    }
    if recorded.onboard != replayed.onboard {
        push(
            "onboard",
            recorded.onboard.to_string(),
            replayed.onboard.to_string(),
        );
    }
    if recorded.executed_travel.to_bits() != replayed.executed_travel.to_bits() {
        push(
            "executed_travel",
            recorded.executed_travel.to_string(),
            replayed.executed_travel.to_string(),
        );
    }
    if recorded.assigned != replayed.assigned {
        push(
            "assigned",
            fmt_ids(&recorded.assigned),
            fmt_ids(&replayed.assigned),
        );
    }
    if recorded.completed != replayed.completed {
        push(
            "completed",
            fmt_ids(&recorded.completed),
            fmt_ids(&replayed.completed),
        );
    }
    if recorded.schedule != replayed.schedule {
        push(
            "schedule",
            fmt_schedule(&recorded.schedule),
            fmt_schedule(&replayed.schedule),
        );
    }
}

/// Replays `trace` against `dispatcher` on `engine` and reports drift.
///
/// Every batch starts from the recorded pre-dispatch fleet state, so the
/// dispatcher's own cross-batch state (e.g. SARD's working pool) evolves
/// exactly as during recording *as long as it keeps making the recorded
/// decisions* — and the first deviation is pinned to its batch instead of
/// cascading.  The dispatcher must be freshly constructed (no batches
/// dispatched yet) and configured identically to the recording; the context
/// is rebuilt from `trace.meta.config`.
pub fn replay_trace(
    engine: &SpEngine,
    dispatcher: &mut dyn Dispatcher,
    trace: &Trace,
) -> DriftReport {
    let mut report = DriftReport::default();
    let bbox = structride_spatial::RegionGrid::padded_bbox(engine.network().bounding_box());
    for batch in &trace.batches {
        // Mirror the simulators: the engine serves each batch under the
        // traffic epoch of the batch clock (no-op for static engines, i.e.
        // every pre-traffic trace).
        engine.roll_epoch_to(batch.now);
        let mut vehicles: Vec<Vehicle> = batch
            .fleet_before
            .iter()
            .map(VehicleState::restore)
            .collect();
        // Rebuild the persistent fleet index from the recorded pre-dispatch
        // state so the prescreen takes the same path as during recording.
        // The certified survivor set depends only on vehicle positions (the
        // grid granularity never changes which vehicles survive), so a
        // fresh per-batch index reproduces the recorded counters.
        let mut index = crate::fleet_index::FleetIndex::build(
            bbox,
            trace.meta.config.grid_cells,
            engine.network(),
            &vehicles,
        );
        if engine.traffic_active() {
            // The index caches the free-flow reachability rate at build; pin
            // the current epoch's certified rate exactly as recording did.
            index.set_min_time_per_meter(engine.min_time_per_meter());
        }
        let ctx = DispatchContext::for_batch(engine, trace.meta.config, batch.now, batch.index)
            .with_fleet_index(&index);
        let outcome = dispatcher.dispatch_batch(&ctx, &mut vehicles, &batch.requests);
        let scratch = ctx.scratch.snapshot();
        report.batches_compared += 1;

        let mut deltas = Vec::new();
        if outcome.assigned != batch.assigned {
            deltas.push(FieldDelta {
                field: "outcome.assigned".to_string(),
                recorded: fmt_ids(&batch.assigned),
                replayed: fmt_ids(&outcome.assigned),
            });
        }
        // v1 traces predate the certified prescreen: their recorded
        // `insertion_evaluations` counted the full-fleet sweep and they have
        // no `prescreen_pruned` at all, so those two counters are only
        // compared for v2+ traces.  Decisions (assignments, fleet state) and
        // `groups_enumerated` are compared for every version — the prescreen
        // provably never changes them.
        if trace.meta.version >= 2 {
            if scratch.insertion_evaluations != batch.scratch.insertion_evaluations {
                deltas.push(FieldDelta {
                    field: "scratch.insertion_evaluations".to_string(),
                    recorded: batch.scratch.insertion_evaluations.to_string(),
                    replayed: scratch.insertion_evaluations.to_string(),
                });
            }
            if scratch.prescreen_pruned != batch.scratch.prescreen_pruned {
                deltas.push(FieldDelta {
                    field: "scratch.prescreen_pruned".to_string(),
                    recorded: batch.scratch.prescreen_pruned.to_string(),
                    replayed: scratch.prescreen_pruned.to_string(),
                });
            }
        }
        if scratch.groups_enumerated != batch.scratch.groups_enumerated {
            deltas.push(FieldDelta {
                field: "scratch.groups_enumerated".to_string(),
                recorded: batch.scratch.groups_enumerated.to_string(),
                replayed: scratch.groups_enumerated.to_string(),
            });
        }
        if vehicles.len() != batch.fleet_after.len() {
            deltas.push(FieldDelta {
                field: "fleet.len".to_string(),
                recorded: batch.fleet_after.len().to_string(),
                replayed: vehicles.len().to_string(),
            });
        } else {
            for (recorded, vehicle) in batch.fleet_after.iter().zip(&vehicles) {
                let replayed = VehicleState::capture(vehicle);
                if *recorded != replayed {
                    diff_vehicle(&mut deltas, recorded, &replayed);
                }
            }
        }
        if !deltas.is_empty() {
            report.divergences.push(BatchDivergence {
                batch_index: batch.index,
                deltas,
            });
        }
    }
    report
}

fn diff_fleet(
    deltas: &mut Vec<FieldDelta>,
    label: &str,
    recorded: &[VehicleState],
    replayed: &[VehicleState],
) {
    if recorded.len() != replayed.len() {
        deltas.push(FieldDelta {
            field: format!("{label}.len"),
            recorded: recorded.len().to_string(),
            replayed: replayed.len().to_string(),
        });
        return;
    }
    for (rec, rep) in recorded.iter().zip(replayed) {
        if rec != rep {
            diff_vehicle(deltas, rec, rep);
        }
    }
}

/// Diffs two traces of the *same pipeline* batch by batch into a
/// [`DriftReport`].
///
/// Where [`replay_trace`] re-feeds a dispatcher through the recorded
/// per-batch inputs, `diff_traces` compares two complete recordings — the
/// comparison the **sharded** pipeline uses: a sharded run cannot be
/// replayed through a single `Dispatcher` (each shard owns one), so the
/// sharded simulator re-runs end to end and the two global traces are
/// required to be bit-identical.  Inputs (`now`, released requests,
/// pre-dispatch fleet) are diffed too: in an end-to-end re-run a decision
/// divergence *does* cascade into later batch inputs, and surfacing the
/// first divergent field pins where.
pub fn diff_traces(recorded: &Trace, replayed: &Trace) -> DriftReport {
    let mut report = DriftReport::default();
    // A v1 trace predates the certified prescreen: its
    // `insertion_evaluations` counted every vehicle scanned and it carries
    // no `prescreen_pruned`, so those two counters are not comparable across
    // the version boundary.  `groups_enumerated` kept its meaning and is
    // always compared, as are all decisions and fleet states.
    let counters_comparable = recorded.meta.version >= 2 && replayed.meta.version >= 2;
    if recorded.batches.len() != replayed.batches.len() {
        report.divergences.push(BatchDivergence {
            batch_index: recorded.batches.len().min(replayed.batches.len()),
            deltas: vec![FieldDelta {
                field: "trace.batches".to_string(),
                recorded: recorded.batches.len().to_string(),
                replayed: replayed.batches.len().to_string(),
            }],
        });
    }
    for (rec, rep) in recorded.batches.iter().zip(&replayed.batches) {
        report.batches_compared += 1;
        let mut deltas = Vec::new();
        if rec.now.to_bits() != rep.now.to_bits() {
            deltas.push(FieldDelta {
                field: "batch.now".to_string(),
                recorded: rec.now.to_string(),
                replayed: rep.now.to_string(),
            });
        }
        if rec.requests != rep.requests {
            deltas.push(FieldDelta {
                field: "batch.requests".to_string(),
                recorded: fmt_ids(&rec.requests.iter().map(|r| r.id).collect::<Vec<_>>()),
                replayed: fmt_ids(&rep.requests.iter().map(|r| r.id).collect::<Vec<_>>()),
            });
        }
        diff_fleet(
            &mut deltas,
            "fleet_before",
            &rec.fleet_before,
            &rep.fleet_before,
        );
        if rec.assigned != rep.assigned {
            deltas.push(FieldDelta {
                field: "outcome.assigned".to_string(),
                recorded: fmt_ids(&rec.assigned),
                replayed: fmt_ids(&rep.assigned),
            });
        }
        let scratch_drifted = if counters_comparable {
            rec.scratch != rep.scratch
        } else {
            rec.scratch.groups_enumerated != rep.scratch.groups_enumerated
        };
        if scratch_drifted {
            deltas.push(FieldDelta {
                field: "scratch".to_string(),
                recorded: format!("{:?}", rec.scratch),
                replayed: format!("{:?}", rep.scratch),
            });
        }
        diff_fleet(
            &mut deltas,
            "fleet_after",
            &rec.fleet_after,
            &rep.fleet_after,
        );
        if !deltas.is_empty() {
            report.divergences.push(BatchDivergence {
                batch_index: rec.index,
                deltas,
            });
        }
    }
    report.divergences.sort_by_key(|d| d.batch_index);
    report
}

// ---------------------------------------------------------------------------
// Text codec
// ---------------------------------------------------------------------------

/// Error parsing a trace from its text form.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number the error was detected at.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

fn waypoint_to_token(wp: &Waypoint) -> String {
    let kind = match wp.kind {
        WaypointKind::Pickup => 'P',
        WaypointKind::Dropoff => 'D',
    };
    format!(
        "{kind}:{}:{}:{}:{}:{}",
        wp.request, wp.node, wp.deadline, wp.earliest, wp.riders
    )
}

fn ids_to_token(ids: &[RequestId]) -> String {
    ids.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the traffic profile as a single config token value:
/// `none`, `rush`, or `custom:<24 colon-joined hourly factors>`.
fn traffic_profile_token(profile: &TrafficProfile) -> String {
    match profile {
        TrafficProfile::None => "none".to_string(),
        TrafficProfile::Rush => "rush".to_string(),
        TrafficProfile::Custom(factors) => {
            let joined = factors
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(":");
            format!("custom:{joined}")
        }
    }
}

/// Renders the congestion zones as a single config token value: `-` when
/// there are none, else `;`-joined `minx,miny,maxx,maxy,factor,from,until`
/// tuples in slot order.
fn traffic_zones_token(config: &TrafficConfig) -> String {
    let zones: Vec<String> = config
        .zones()
        .map(|z| {
            format!(
                "{},{},{},{},{},{},{}",
                z.min_x, z.min_y, z.max_x, z.max_y, z.factor, z.active_from, z.active_until
            )
        })
        .collect();
    if zones.is_empty() {
        "-".to_string()
    } else {
        zones.join(";")
    }
}

fn vehicle_to_line(v: &VehicleState) -> String {
    let sched = v
        .schedule
        .iter()
        .map(waypoint_to_token)
        .collect::<Vec<_>>()
        .join(";");
    format!(
        "vehicle {} {} {} {} {} {} a={} c={} s={}",
        v.id,
        v.capacity,
        v.node,
        v.free_at,
        v.onboard,
        v.executed_travel,
        ids_to_token(&v.assigned),
        ids_to_token(&v.completed),
        sched
    )
}

/// Serializes a [`StructRideConfig`] to the `config ` line body shared by the
/// trace and checkpoint text formats.  `version` gates the trailing token
/// groups: the four traffic tokens exist only at v3+ and the five fault
/// tokens only at v4+, so re-serializing a parsed older trace stays
/// byte-identical to its original text.  Checkpoints always serialize at the
/// current version (all tokens).
fn config_to_tokens(c: &StructRideConfig, version: u32) -> String {
    let mut out = format!(
        "batch_period={} alpha={} penalty={} shareability_capacity={} \
         angle_enabled={} angle_threshold={} grid_cells={} max_candidate_vehicles={} \
         ingest_max_batch={} ingest_deadline={} ingest_queue={} ingest_time_scale={}",
        c.batch_period,
        c.cost.alpha,
        c.cost.penalty_coefficient,
        c.shareability_capacity,
        c.angle.enabled,
        c.angle.threshold,
        c.grid_cells,
        c.max_candidate_vehicles,
        c.ingest.max_batch_size,
        c.ingest.batch_deadline,
        c.ingest.queue_capacity,
        c.ingest.time_scale
    );
    if version >= 3 {
        out.push_str(&format!(
            " traffic_profile={} traffic_epoch_s={} traffic_hour_s={} traffic_zones={}",
            traffic_profile_token(&c.traffic.profile),
            c.traffic.epoch_seconds,
            c.traffic.hour_scale,
            traffic_zones_token(&c.traffic)
        ));
    }
    if version >= 4 {
        out.push_str(&format!(
            " faults_seed={} faults_outage_every={} faults_outage_batches={} \
             faults_solver_budget={} faults_checkpoint_every={}",
            c.faults.seed,
            c.faults.outage_every,
            c.faults.outage_batches,
            c.faults.solver_node_budget,
            c.faults.checkpoint_every
        ));
    }
    out
}

impl Trace {
    /// Serializes the trace to its versioned text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let m = &self.meta;
        out.push_str(if m.version >= 4 {
            TRACE_HEADER_V4
        } else if m.version >= 3 {
            TRACE_HEADER_V3
        } else if m.version >= 2 {
            TRACE_HEADER_V2
        } else {
            TRACE_HEADER_V1
        });
        out.push('\n');
        out.push_str(&format!("algorithm {}\n", m.algorithm));
        out.push_str(&format!("workload {}\n", m.workload));
        out.push_str(&format!(
            "config {}\n",
            config_to_tokens(&m.config, m.version)
        ));
        for (k, v) in &m.params {
            out.push_str(&format!("param {k} {v}\n"));
        }
        if let Some(s) = m.sp_stats {
            out.push_str(&format!(
                "sp_stats total={} hits={} index={}\n",
                s.total_queries, s.cache_hits, s.index_queries
            ));
        }
        if let Some(s) = m.build_stats {
            // BuildStats's Display is the trace rendering (single source of
            // truth shared with the replay binary's summary output).
            out.push_str(&format!("build_stats {s}\n"));
        }
        for b in &self.batches {
            out.push_str(&format!("batch {} now={}\n", b.index, b.now));
            for r in &b.requests {
                out.push_str(&format!(
                    "request {} {} {} {} {} {} {} {}\n",
                    r.id,
                    r.source,
                    r.destination,
                    r.riders,
                    r.release,
                    r.deadline,
                    r.pickup_deadline,
                    r.shortest_cost
                ));
            }
            out.push_str("fleet before\n");
            for v in &b.fleet_before {
                out.push_str(&vehicle_to_line(v));
                out.push('\n');
            }
            if m.version >= 2 {
                out.push_str(&format!(
                    "outcome assigned={} insertion_evaluations={} groups_enumerated={} \
                     prescreen_pruned={}\n",
                    ids_to_token(&b.assigned),
                    b.scratch.insertion_evaluations,
                    b.scratch.groups_enumerated,
                    b.scratch.prescreen_pruned
                ));
            } else {
                out.push_str(&format!(
                    "outcome assigned={} insertion_evaluations={} groups_enumerated={}\n",
                    ids_to_token(&b.assigned),
                    b.scratch.insertion_evaluations,
                    b.scratch.groups_enumerated
                ));
            }
            out.push_str("fleet after\n");
            for v in &b.fleet_after {
                out.push_str(&vehicle_to_line(v));
                out.push('\n');
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses a trace from its text form.
    pub fn parse(text: &str) -> Result<Trace, TraceParseError> {
        Parser::new(text).parse()
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Magic first line of the checkpoint text format (see [`Checkpoint`]).
const CHECKPOINT_HEADER_V1: &str = "structride-checkpoint v1";

/// Run-level counters carried across a checkpoint boundary.  Monolithic runs
/// leave the sharded-only fields (handoffs, migrations, epoch/label rolls,
/// fault telemetry) at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Requests routed to a non-home shard by the handoff auction.
    pub handoffs: u64,
    /// Bids evaluated by the handoff auction.
    pub handoff_bids: u64,
    /// Idle vehicles migrated between shards by rebalancing.
    pub migrations: u64,
    /// Traffic-epoch boundaries crossed.
    pub epoch_rolls: u64,
    /// Epoch rolls served by the uniform-rescale tier.
    pub labels_rescaled: u64,
    /// Epoch rolls that rebuilt or repaired label state.
    pub labels_rebuilt: u64,
    /// Shard outages injected by the fault plan.
    pub faults_injected: u64,
    /// Batches stepped with a shard down.
    pub batches_degraded: u64,
    /// Requests offered while degraded (orphans + batch arrivals).
    pub degraded_offered: u64,
    /// Requests assigned while degraded.
    pub degraded_served: u64,
}

/// One shard's slice of a [`Checkpoint`] — or the entire state of a
/// monolithic run (which checkpoints as a single shard with empty `routed`
/// and `served` ledgers, since the monolithic simulator accounts globally).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardCheckpoint {
    /// Accumulated insertion-evaluation scratch counter.
    pub insertion_evaluations: u64,
    /// Accumulated group-enumeration scratch counter.
    pub groups_enumerated: u64,
    /// Accumulated certified-prescreen prune counter.
    pub prescreen_pruned: u64,
    /// Accumulated degraded exact solves
    /// ([`SolverStats::fallbacks`](crate::lap::SolverStats)).
    pub solver_fallbacks: u64,
    /// Every request ever routed to this shard with its direct cost (the
    /// per-shard unserved-penalty ledger), in routing order.
    pub routed: Vec<(RequestId, f64)>,
    /// Requests this shard served, sorted by id.
    pub served: Vec<RequestId>,
    /// The shard's fleet in slot order (slot order is load-bearing: the
    /// fleet index is keyed by slot, and migrations reorder slots).
    pub fleet: Vec<VehicleState>,
    /// The shard dispatcher's carried pool and derived edges.
    pub pending: PendingSnapshot,
}

/// A full simulation snapshot at a batch boundary, written by
/// [`Simulator::run_with_checkpoints`](crate::Simulator::run_with_checkpoints)
/// /
/// [`ShardedSimulator::run_with_checkpoints`](crate::ShardedSimulator::run_with_checkpoints)
/// whenever the fault plan's checkpoint cadence fires (see
/// [`FaultConfig::checkpoint_every`](crate::faults::FaultConfig)), and
/// consumed by the matching `resume` entry points.
///
/// The contract is **bit-identical resume**: a run restored from a
/// checkpoint must finish with exactly the decisions, served sets and
/// deterministic metrics of the uninterrupted run.  To that end the
/// checkpoint serializes every piece of decision-bearing state — clock,
/// stream cursor, fleets (floats in Rust's shortest round-trip form),
/// dispatcher pools *and* their derived shareability edges (edges are
/// epoch-dependent at evaluation time, so they must not be re-derived) —
/// while wall-clock diagnostics (dispatch seconds, shortest-path query
/// counts, memory estimates) are deliberately left out, exactly as replay
/// comparisons exclude them.
///
/// The *future* request stream is **not** serialized: resume requires the
/// caller to supply the same request slice as the original run (workloads
/// are deterministic generators), and `next_request` indexes into its
/// release-sorted order.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Dispatcher name (`RunMetrics::algorithm`).
    pub algorithm: String,
    /// Workload name the run was started with.
    pub workload: String,
    /// The framework configuration (includes the fault plan, so the resumed
    /// run re-derives the identical outage/budget/checkpoint schedule).
    pub config: StructRideConfig,
    /// Whether this snapshot came from the sharded driver.
    pub sharded: bool,
    /// Simulation clock at capture (the end of the last stepped batch).
    pub now: f64,
    /// Batches stepped so far == the index of the next batch to dispatch.
    pub batches: usize,
    /// Requests of the release-sorted stream already offered.
    pub next_request: usize,
    /// Globally served request ids, sorted.
    pub served: Vec<RequestId>,
    /// Run-level counters.
    pub counters: CheckpointCounters,
    /// Per-shard state (exactly one entry for monolithic runs).
    pub shards: Vec<ShardCheckpoint>,
}

fn routed_to_token(routed: &[(RequestId, f64)]) -> String {
    routed
        .iter()
        .map(|(id, cost)| format!("{id}:{cost}"))
        .collect::<Vec<_>>()
        .join(";")
}

fn edges_to_token(edges: &[(RequestId, RequestId)]) -> String {
    edges
        .iter()
        .map(|(a, b)| format!("{a}-{b}"))
        .collect::<Vec<_>>()
        .join(";")
}

fn request_to_line(r: &Request) -> String {
    format!(
        "request {} {} {} {} {} {} {} {}",
        r.id,
        r.source,
        r.destination,
        r.riders,
        r.release,
        r.deadline,
        r.pickup_deadline,
        r.shortest_cost
    )
}

impl Checkpoint {
    /// Serializes the checkpoint to its line-oriented text form (floats in
    /// Rust's shortest round-trip representation, like traces).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CHECKPOINT_HEADER_V1);
        out.push('\n');
        out.push_str(&format!("algorithm {}\n", self.algorithm));
        out.push_str(&format!("workload {}\n", self.workload));
        out.push_str(&format!(
            "config {}\n",
            config_to_tokens(&self.config, TRACE_VERSION)
        ));
        out.push_str(&format!(
            "mode {}\n",
            if self.sharded { "sharded" } else { "mono" }
        ));
        out.push_str(&format!(
            "clock now={} batches={} next_request={}\n",
            self.now, self.batches, self.next_request
        ));
        out.push_str(&format!("served {}\n", ids_to_token(&self.served)));
        let c = &self.counters;
        out.push_str(&format!(
            "counters handoffs={} handoff_bids={} migrations={} epoch_rolls={} \
             labels_rescaled={} labels_rebuilt={} faults_injected={} batches_degraded={} \
             degraded_offered={} degraded_served={}\n",
            c.handoffs,
            c.handoff_bids,
            c.migrations,
            c.epoch_rolls,
            c.labels_rescaled,
            c.labels_rebuilt,
            c.faults_injected,
            c.batches_degraded,
            c.degraded_offered,
            c.degraded_served
        ));
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!("shard {i}\n"));
            out.push_str(&format!(
                "scratch insertion_evaluations={} groups_enumerated={} prescreen_pruned={} \
                 solver_fallbacks={}\n",
                s.insertion_evaluations,
                s.groups_enumerated,
                s.prescreen_pruned,
                s.solver_fallbacks
            ));
            out.push_str(&format!("routed {}\n", routed_to_token(&s.routed)));
            out.push_str(&format!("served {}\n", ids_to_token(&s.served)));
            out.push_str("fleet\n");
            for v in &s.fleet {
                out.push_str(&vehicle_to_line(v));
                out.push('\n');
            }
            out.push_str("pool\n");
            for r in &s.pending.pool {
                out.push_str(&request_to_line(r));
                out.push('\n');
            }
            out.push_str(&format!("edges {}\n", edges_to_token(&s.pending.edges)));
            out.push_str("end\n");
        }
        out
    }

    /// Parses a checkpoint from its text form.
    pub fn parse(text: &str) -> Result<Checkpoint, TraceParseError> {
        Parser::new(text).parse_checkpoint()
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Checkpoint> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

struct Parser<'a> {
    lines: std::iter::Peekable<std::str::Lines<'a>>,
    line_no: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().peekable(),
            line_no: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> TraceParseError {
        TraceParseError {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        let line = self.lines.next();
        if line.is_some() {
            self.line_no += 1;
        }
        line
    }

    fn peek(&mut self) -> Option<&'a str> {
        self.lines.peek().copied()
    }

    fn parse_scalar<T: FromStr>(&self, token: &str, what: &str) -> Result<T, TraceParseError> {
        token
            .parse::<T>()
            .map_err(|_| self.err(format!("invalid {what}: {token:?}")))
    }

    /// Parses `key=value` out of a token, checking the key.
    fn parse_kv<T: FromStr>(&self, token: &str, key: &str) -> Result<T, TraceParseError> {
        let value = token
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| self.err(format!("expected {key}=..., got {token:?}")))?;
        self.parse_scalar(value, key)
    }

    /// Parses the `traffic_profile=` token: `none`, `rush`, or
    /// `custom:<24 colon-joined hourly factors>`.
    fn parse_traffic_profile(&self, token: &str) -> Result<TrafficProfile, TraceParseError> {
        let value = token
            .strip_prefix("traffic_profile=")
            .ok_or_else(|| self.err(format!("expected traffic_profile=..., got {token:?}")))?;
        match value {
            "none" => Ok(TrafficProfile::None),
            "rush" => Ok(TrafficProfile::Rush),
            custom => {
                let factors = custom
                    .strip_prefix("custom:")
                    .ok_or_else(|| self.err(format!("unknown traffic profile {value:?}")))?;
                let parsed: Vec<f64> = factors
                    .split(':')
                    .map(|t| self.parse_scalar(t, "traffic profile factor"))
                    .collect::<Result<_, _>>()?;
                let hourly: [f64; 24] = parsed
                    .try_into()
                    .map_err(|_| self.err("custom traffic profile needs 24 factors"))?;
                Ok(TrafficProfile::Custom(hourly))
            }
        }
    }

    /// Parses the `traffic_zones=` token: `-` for none, else `;`-joined
    /// `minx,miny,maxx,maxy,factor,from,until` tuples.
    fn parse_traffic_zones(
        &self,
        token: &str,
    ) -> Result<[Option<CongestionZone>; MAX_TRAFFIC_ZONES], TraceParseError> {
        let value = token
            .strip_prefix("traffic_zones=")
            .ok_or_else(|| self.err(format!("expected traffic_zones=..., got {token:?}")))?;
        let mut zones: [Option<CongestionZone>; MAX_TRAFFIC_ZONES] = [None; MAX_TRAFFIC_ZONES];
        if value == "-" {
            return Ok(zones);
        }
        for (slot, tuple) in value.split(';').enumerate() {
            if slot >= MAX_TRAFFIC_ZONES {
                return Err(self.err(format!(
                    "at most {MAX_TRAFFIC_ZONES} congestion zones supported"
                )));
            }
            let parts: Vec<&str> = tuple.split(',').collect();
            if parts.len() != 7 {
                return Err(self.err(format!("malformed congestion zone {tuple:?}")));
            }
            zones[slot] = Some(CongestionZone {
                min_x: self.parse_scalar(parts[0], "zone min_x")?,
                min_y: self.parse_scalar(parts[1], "zone min_y")?,
                max_x: self.parse_scalar(parts[2], "zone max_x")?,
                max_y: self.parse_scalar(parts[3], "zone max_y")?,
                factor: self.parse_scalar(parts[4], "zone factor")?,
                active_from: self.parse_scalar(parts[5], "zone active_from")?,
                active_until: self.parse_scalar(parts[6], "zone active_until")?,
            });
        }
        Ok(zones)
    }

    fn parse_ids(&self, token: &str) -> Result<Vec<RequestId>, TraceParseError> {
        if token.is_empty() {
            return Ok(Vec::new());
        }
        token
            .split(',')
            .map(|t| self.parse_scalar(t, "request id"))
            .collect()
    }

    fn parse_waypoint(&self, token: &str) -> Result<Waypoint, TraceParseError> {
        let parts: Vec<&str> = token.split(':').collect();
        if parts.len() != 6 {
            return Err(self.err(format!("malformed waypoint token {token:?}")));
        }
        let kind = match parts[0] {
            "P" => WaypointKind::Pickup,
            "D" => WaypointKind::Dropoff,
            other => return Err(self.err(format!("unknown waypoint kind {other:?}"))),
        };
        Ok(Waypoint {
            request: self.parse_scalar(parts[1], "waypoint request")?,
            node: self.parse_scalar(parts[2], "waypoint node")?,
            kind,
            deadline: self.parse_scalar(parts[3], "waypoint deadline")?,
            earliest: self.parse_scalar(parts[4], "waypoint earliest")?,
            riders: self.parse_scalar(parts[5], "waypoint riders")?,
        })
    }

    fn parse_vehicle(&self, line: &str) -> Result<VehicleState, TraceParseError> {
        let rest = line
            .strip_prefix("vehicle ")
            .ok_or_else(|| self.err("expected a vehicle line"))?;
        let tokens: Vec<&str> = rest.split(' ').collect();
        if tokens.len() != 9 {
            return Err(self.err(format!("vehicle line needs 9 fields, got {}", tokens.len())));
        }
        let assigned = tokens[6]
            .strip_prefix("a=")
            .ok_or_else(|| self.err("expected a=<ids>"))?;
        let completed = tokens[7]
            .strip_prefix("c=")
            .ok_or_else(|| self.err("expected c=<ids>"))?;
        let sched = tokens[8]
            .strip_prefix("s=")
            .ok_or_else(|| self.err("expected s=<waypoints>"))?;
        let schedule = if sched.is_empty() {
            Vec::new()
        } else {
            sched
                .split(';')
                .map(|t| self.parse_waypoint(t))
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(VehicleState {
            id: self.parse_scalar(tokens[0], "vehicle id")?,
            capacity: self.parse_scalar(tokens[1], "vehicle capacity")?,
            node: self.parse_scalar(tokens[2], "vehicle node")?,
            free_at: self.parse_scalar(tokens[3], "vehicle free_at")?,
            onboard: self.parse_scalar(tokens[4], "vehicle onboard")?,
            executed_travel: self.parse_scalar(tokens[5], "vehicle executed_travel")?,
            assigned: self.parse_ids(assigned)?,
            completed: self.parse_ids(completed)?,
            schedule,
        })
    }

    fn parse_fleet(&mut self, expected_marker: &str) -> Result<Vec<VehicleState>, TraceParseError> {
        let marker = self
            .next_line()
            .ok_or_else(|| self.err(format!("missing {expected_marker:?} marker")))?;
        if marker != expected_marker {
            return Err(self.err(format!("expected {expected_marker:?}, got {marker:?}")));
        }
        let mut fleet = Vec::new();
        while let Some(line) = self.peek() {
            if !line.starts_with("vehicle ") {
                break;
            }
            let line = self.next_line().expect("peeked line exists");
            fleet.push(self.parse_vehicle(line)?);
        }
        Ok(fleet)
    }

    /// Parses a `request ` line body (8 space-separated fields) — shared by
    /// the trace batches and the checkpoint pool sections.
    fn parse_request(&self, rest: &str) -> Result<Request, TraceParseError> {
        let tokens: Vec<&str> = rest.split(' ').collect();
        if tokens.len() != 8 {
            return Err(self.err("request line needs 8 fields"));
        }
        Ok(Request::new(
            self.parse_scalar(tokens[0], "request id")?,
            self.parse_scalar(tokens[1], "request source")?,
            self.parse_scalar(tokens[2], "request destination")?,
            self.parse_scalar(tokens[3], "request riders")?,
            self.parse_scalar(tokens[4], "request release")?,
            self.parse_scalar(tokens[5], "request deadline")?,
            self.parse_scalar(tokens[6], "request pickup_deadline")?,
            self.parse_scalar(tokens[7], "request shortest_cost")?,
        ))
    }

    /// Parses a `config ` line body — shared by the trace and checkpoint
    /// formats.  8 fields is the pre-ingest (v1 without ingest knobs) shape,
    /// 12 the pre-traffic (v2) shape, 16 the pre-fault (v3) shape; older
    /// shapes parse with the default (static) traffic model, default ingest
    /// knobs and the inert fault config.
    fn parse_config(&self, rest: &str) -> Result<StructRideConfig, TraceParseError> {
        let tokens: Vec<&str> = rest.split(' ').collect();
        if tokens.len() != 8 && tokens.len() != 12 && tokens.len() != 16 && tokens.len() != 21 {
            return Err(self.err("config line needs 8, 12, 16 or 21 fields"));
        }
        let ingest = if tokens.len() >= 12 {
            crate::ingest::IngestConfig {
                max_batch_size: self.parse_kv(tokens[8], "ingest_max_batch")?,
                batch_deadline: self.parse_kv(tokens[9], "ingest_deadline")?,
                queue_capacity: self.parse_kv(tokens[10], "ingest_queue")?,
                time_scale: self.parse_kv(tokens[11], "ingest_time_scale")?,
            }
        } else {
            crate::ingest::IngestConfig::default()
        };
        let traffic = if tokens.len() >= 16 {
            TrafficConfig {
                profile: self.parse_traffic_profile(tokens[12])?,
                epoch_seconds: self.parse_kv(tokens[13], "traffic_epoch_s")?,
                hour_scale: self.parse_kv(tokens[14], "traffic_hour_s")?,
                zones: self.parse_traffic_zones(tokens[15])?,
            }
        } else {
            TrafficConfig::default()
        };
        let faults = if tokens.len() >= 21 {
            crate::faults::FaultConfig {
                seed: self.parse_kv(tokens[16], "faults_seed")?,
                outage_every: self.parse_kv(tokens[17], "faults_outage_every")?,
                outage_batches: self.parse_kv(tokens[18], "faults_outage_batches")?,
                solver_node_budget: self.parse_kv(tokens[19], "faults_solver_budget")?,
                checkpoint_every: self.parse_kv(tokens[20], "faults_checkpoint_every")?,
            }
        } else {
            crate::faults::FaultConfig::default()
        };
        Ok(StructRideConfig {
            batch_period: self.parse_kv(tokens[0], "batch_period")?,
            cost: structride_model::CostParams {
                alpha: self.parse_kv(tokens[1], "alpha")?,
                penalty_coefficient: self.parse_kv(tokens[2], "penalty")?,
            },
            shareability_capacity: self.parse_kv(tokens[3], "shareability_capacity")?,
            angle: structride_sharegraph::AnglePruning {
                enabled: self.parse_kv(tokens[4], "angle_enabled")?,
                threshold: self.parse_kv(tokens[5], "angle_threshold")?,
            },
            grid_cells: self.parse_kv(tokens[6], "grid_cells")?,
            max_candidate_vehicles: self.parse_kv(tokens[7], "max_candidate_vehicles")?,
            ingest,
            traffic,
            faults,
        })
    }

    fn parse(mut self) -> Result<Trace, TraceParseError> {
        let header = self.next_line().ok_or_else(|| self.err("empty trace"))?;
        let version = match header {
            TRACE_HEADER_V1 => 1,
            TRACE_HEADER_V2 => 2,
            TRACE_HEADER_V3 => 3,
            TRACE_HEADER_V4 => 4,
            _ => return Err(self.err(format!("unsupported trace header {header:?}"))),
        };
        let mut meta = TraceMeta {
            version,
            ..TraceMeta::default()
        };
        // Metadata lines, until the first `batch`.
        while let Some(line) = self.peek() {
            if line.starts_with("batch ") {
                break;
            }
            let line = self.next_line().expect("peeked line exists");
            if let Some(rest) = line.strip_prefix("algorithm ") {
                meta.algorithm = rest.to_string();
            } else if let Some(rest) = line.strip_prefix("workload ") {
                meta.workload = rest.to_string();
            } else if let Some(rest) = line.strip_prefix("config ") {
                meta.config = self.parse_config(rest)?;
            } else if let Some(rest) = line.strip_prefix("param ") {
                let (key, value) = rest
                    .split_once(' ')
                    .ok_or_else(|| self.err("param line needs a key and a value"))?;
                meta.params.push((key.to_string(), value.to_string()));
            } else if let Some(rest) = line.strip_prefix("sp_stats ") {
                let tokens: Vec<&str> = rest.split(' ').collect();
                if tokens.len() != 3 {
                    return Err(self.err("sp_stats line needs 3 fields"));
                }
                meta.sp_stats = Some(SpStats {
                    total_queries: self.parse_kv(tokens[0], "total")?,
                    cache_hits: self.parse_kv(tokens[1], "hits")?,
                    index_queries: self.parse_kv(tokens[2], "index")?,
                });
            } else if let Some(rest) = line.strip_prefix("build_stats ") {
                let tokens: Vec<&str> = rest.split(' ').collect();
                if tokens.len() != 4 {
                    return Err(self.err("build_stats line needs 4 fields"));
                }
                meta.build_stats = Some(BuildStats {
                    candidate_pairs: self.parse_kv(tokens[0], "candidate_pairs")?,
                    angle_pruned: self.parse_kv(tokens[1], "angle_pruned")?,
                    shareability_checks: self.parse_kv(tokens[2], "shareability_checks")?,
                    edges_added: self.parse_kv(tokens[3], "edges_added")?,
                });
            } else if !line.trim().is_empty() {
                return Err(self.err(format!("unexpected metadata line {line:?}")));
            }
        }

        let mut batches = Vec::new();
        while let Some(line) = self.next_line() {
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("batch ")
                .ok_or_else(|| self.err(format!("expected a batch header, got {line:?}")))?;
            let (index_tok, now_tok) = rest
                .split_once(' ')
                .ok_or_else(|| self.err("batch header needs an index and now=..."))?;
            let index: usize = self.parse_scalar(index_tok, "batch index")?;
            let now: f64 = self.parse_kv(now_tok, "now")?;

            let mut requests = Vec::new();
            while let Some(line) = self.peek() {
                if !line.starts_with("request ") {
                    break;
                }
                let line = self.next_line().expect("peeked line exists");
                requests.push(self.parse_request(&line["request ".len()..])?);
            }

            let fleet_before = self.parse_fleet("fleet before")?;

            let outcome_line = self
                .next_line()
                .ok_or_else(|| self.err("missing outcome line"))?;
            let rest = outcome_line.strip_prefix("outcome ").ok_or_else(|| {
                self.err(format!("expected an outcome line, got {outcome_line:?}"))
            })?;
            let tokens: Vec<&str> = rest.split(' ').collect();
            // 3 fields is the v1 shape (no prescreen counter); v2 adds
            // `prescreen_pruned` as a fourth.
            if tokens.len() != 3 && tokens.len() != 4 {
                return Err(self.err("outcome line needs 3 or 4 fields"));
            }
            let assigned_tok = tokens[0]
                .strip_prefix("assigned=")
                .ok_or_else(|| self.err("expected assigned=<ids>"))?;
            let assigned = self.parse_ids(assigned_tok)?;
            let scratch = ScratchStats {
                insertion_evaluations: self.parse_kv(tokens[1], "insertion_evaluations")?,
                groups_enumerated: self.parse_kv(tokens[2], "groups_enumerated")?,
                prescreen_pruned: if tokens.len() == 4 {
                    self.parse_kv(tokens[3], "prescreen_pruned")?
                } else {
                    0
                },
            };

            let fleet_after = self.parse_fleet("fleet after")?;

            let end = self
                .next_line()
                .ok_or_else(|| self.err("missing end marker"))?;
            if end != "end" {
                return Err(self.err(format!("expected \"end\", got {end:?}")));
            }

            batches.push(BatchRecord {
                index,
                now,
                requests,
                fleet_before,
                assigned,
                fleet_after,
                scratch,
            });
        }

        Ok(Trace { meta, batches })
    }

    /// Consumes the next line, requiring prefix `what ` and returning the
    /// remainder; a bare `what` line (no payload) returns the empty string.
    fn expect_line(&mut self, what: &str) -> Result<&'a str, TraceParseError> {
        let line = self
            .next_line()
            .ok_or_else(|| self.err(format!("missing {what} line")))?;
        if line == what {
            return Ok("");
        }
        line.strip_prefix(what)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| self.err(format!("expected a {what} line, got {line:?}")))
    }

    fn parse_routed(&self, token: &str) -> Result<Vec<(RequestId, f64)>, TraceParseError> {
        if token.is_empty() {
            return Ok(Vec::new());
        }
        token
            .split(';')
            .map(|t| {
                let (id, cost) = t
                    .split_once(':')
                    .ok_or_else(|| self.err("routed entry needs id:cost"))?;
                Ok((
                    self.parse_scalar(id, "routed id")?,
                    self.parse_scalar(cost, "routed cost")?,
                ))
            })
            .collect()
    }

    fn parse_edges(&self, token: &str) -> Result<Vec<(RequestId, RequestId)>, TraceParseError> {
        if token.is_empty() {
            return Ok(Vec::new());
        }
        token
            .split(';')
            .map(|t| {
                let (a, b) = t
                    .split_once('-')
                    .ok_or_else(|| self.err("edge entry needs a-b"))?;
                Ok((
                    self.parse_scalar(a, "edge endpoint")?,
                    self.parse_scalar(b, "edge endpoint")?,
                ))
            })
            .collect()
    }

    fn parse_checkpoint(mut self) -> Result<Checkpoint, TraceParseError> {
        let header = self
            .next_line()
            .ok_or_else(|| self.err("empty checkpoint"))?;
        if header != CHECKPOINT_HEADER_V1 {
            return Err(self.err(format!("unsupported checkpoint header {header:?}")));
        }
        let algorithm = self.expect_line("algorithm")?.to_string();
        let workload = self.expect_line("workload")?.to_string();
        let config_rest = self.expect_line("config")?;
        let config = self.parse_config(config_rest)?;
        let sharded = match self.expect_line("mode")? {
            "sharded" => true,
            "mono" => false,
            other => return Err(self.err(format!("unknown checkpoint mode {other:?}"))),
        };
        let clock: Vec<&str> = self.expect_line("clock")?.split(' ').collect();
        if clock.len() != 3 {
            return Err(self.err("clock line needs 3 fields"));
        }
        let now: f64 = self.parse_kv(clock[0], "now")?;
        let batches: usize = self.parse_kv(clock[1], "batches")?;
        let next_request: usize = self.parse_kv(clock[2], "next_request")?;
        let served_tok = self.expect_line("served")?;
        let served = self.parse_ids(served_tok)?;
        let counters: Vec<&str> = self.expect_line("counters")?.split(' ').collect();
        if counters.len() != 10 {
            return Err(self.err("counters line needs 10 fields"));
        }
        let counters = CheckpointCounters {
            handoffs: self.parse_kv(counters[0], "handoffs")?,
            handoff_bids: self.parse_kv(counters[1], "handoff_bids")?,
            migrations: self.parse_kv(counters[2], "migrations")?,
            epoch_rolls: self.parse_kv(counters[3], "epoch_rolls")?,
            labels_rescaled: self.parse_kv(counters[4], "labels_rescaled")?,
            labels_rebuilt: self.parse_kv(counters[5], "labels_rebuilt")?,
            faults_injected: self.parse_kv(counters[6], "faults_injected")?,
            batches_degraded: self.parse_kv(counters[7], "batches_degraded")?,
            degraded_offered: self.parse_kv(counters[8], "degraded_offered")?,
            degraded_served: self.parse_kv(counters[9], "degraded_served")?,
        };

        let mut shards = Vec::new();
        while let Some(line) = self.next_line() {
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("shard ")
                .ok_or_else(|| self.err(format!("expected a shard header, got {line:?}")))?;
            let index: usize = self.parse_scalar(rest, "shard index")?;
            if index != shards.len() {
                return Err(self.err(format!(
                    "shard sections must be in order: expected {}, got {index}",
                    shards.len()
                )));
            }
            let scratch: Vec<&str> = self.expect_line("scratch")?.split(' ').collect();
            if scratch.len() != 4 {
                return Err(self.err("scratch line needs 4 fields"));
            }
            let insertion_evaluations = self.parse_kv(scratch[0], "insertion_evaluations")?;
            let groups_enumerated = self.parse_kv(scratch[1], "groups_enumerated")?;
            let prescreen_pruned = self.parse_kv(scratch[2], "prescreen_pruned")?;
            let solver_fallbacks = self.parse_kv(scratch[3], "solver_fallbacks")?;
            let routed_tok = self.expect_line("routed")?;
            let routed = self.parse_routed(routed_tok)?;
            let served_tok = self.expect_line("served")?;
            let shard_served = self.parse_ids(served_tok)?;
            let marker = self
                .next_line()
                .ok_or_else(|| self.err("missing fleet marker"))?;
            if marker != "fleet" {
                return Err(self.err(format!("expected \"fleet\", got {marker:?}")));
            }
            let mut fleet = Vec::new();
            while let Some(line) = self.peek() {
                if !line.starts_with("vehicle ") {
                    break;
                }
                let line = self.next_line().expect("peeked line exists");
                fleet.push(self.parse_vehicle(line)?);
            }
            let marker = self
                .next_line()
                .ok_or_else(|| self.err("missing pool marker"))?;
            if marker != "pool" {
                return Err(self.err(format!("expected \"pool\", got {marker:?}")));
            }
            let mut pool = Vec::new();
            while let Some(line) = self.peek() {
                if !line.starts_with("request ") {
                    break;
                }
                let line = self.next_line().expect("peeked line exists");
                pool.push(self.parse_request(&line["request ".len()..])?);
            }
            let edges_tok = self.expect_line("edges")?;
            let edges = self.parse_edges(edges_tok)?;
            let end = self
                .next_line()
                .ok_or_else(|| self.err("missing end marker"))?;
            if end != "end" {
                return Err(self.err(format!("expected \"end\", got {end:?}")));
            }
            shards.push(ShardCheckpoint {
                insertion_evaluations,
                groups_enumerated,
                prescreen_pruned,
                solver_fallbacks,
                routed,
                served: shard_served,
                fleet,
                pending: PendingSnapshot { pool, edges },
            });
        }
        if shards.is_empty() {
            return Err(self.err("checkpoint needs at least one shard section"));
        }

        Ok(Checkpoint {
            algorithm,
            workload,
            config,
            sharded,
            now,
            batches,
            next_request,
            served,
            counters,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structride_model::insertion;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    fn line_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..6 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..6u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn req(id: u32, s: u32, e: u32, release: f64, cost: f64) -> Request {
        Request::with_detour(id, s, e, 1, release, cost, 2.0, 300.0)
    }

    /// Greedy insertion with a configurable preference, used to produce
    /// recorded traces and deliberately perturbed replays.
    struct Greedy {
        /// `false`: min added cost (sane); `true`: max added cost (perturbed).
        invert: bool,
    }

    impl Dispatcher for Greedy {
        fn name(&self) -> &'static str {
            "greedy"
        }

        fn dispatch_batch(
            &mut self,
            ctx: &DispatchContext<'_>,
            vehicles: &mut [Vehicle],
            new_requests: &[Request],
        ) -> BatchOutcome {
            let mut outcome = BatchOutcome::empty();
            for r in new_requests {
                let mut best: Option<(usize, structride_model::InsertionOutcome)> = None;
                for (vi, v) in vehicles.iter().enumerate() {
                    if let Some(out) = insertion::insert_request(ctx.engine, v, r) {
                        ctx.scratch.count_insertion_evaluations(1);
                        let better = match &best {
                            None => true,
                            Some((_, b)) => {
                                if self.invert {
                                    out.added_cost > b.added_cost
                                } else {
                                    out.added_cost < b.added_cost
                                }
                            }
                        };
                        if better {
                            best = Some((vi, out));
                        }
                    }
                }
                if let Some((vi, out)) = best {
                    vehicles[vi].commit_schedule(out.schedule);
                    outcome.assigned.push(r.id);
                }
            }
            outcome
        }
    }

    fn record_greedy() -> (SpEngine, Trace) {
        let engine = line_engine();
        let config = StructRideConfig::default();
        let mut recorder = TraceRecorder::new();
        let mut dispatcher = Greedy { invert: false };
        // Both vehicles can serve every request, at different added costs, so
        // an inverted cost preference genuinely changes the commitments.
        let mut vehicles = vec![Vehicle::new(1, 0, 4), Vehicle::new(2, 1, 4)];
        // Two hand-driven batches (the simulator integration is exercised by
        // the crate-level tests; here the recorder is driven directly).
        for (index, batch) in [vec![req(1, 1, 3, 0.0, 20.0)], vec![req(3, 2, 5, 4.0, 30.0)]]
            .into_iter()
            .enumerate()
        {
            let now = 5.0 * (index + 1) as f64;
            for v in vehicles.iter_mut() {
                v.advance_to(&engine, now);
            }
            recorder.batch_started(index, now, &batch, &vehicles);
            let ctx = DispatchContext::for_batch(&engine, config, now, index);
            let outcome = dispatcher.dispatch_batch(&ctx, &mut vehicles, &batch);
            recorder.batch_finished(&outcome, &vehicles, ctx.scratch.snapshot());
        }
        let mut meta = TraceMeta::new("greedy", "unit-line", config);
        meta.params.push(("nodes".to_string(), "6".to_string()));
        meta.sp_stats = Some(engine.stats());
        (engine, recorder.into_trace(meta))
    }

    #[test]
    fn vehicle_state_roundtrips_through_capture_restore() {
        let engine = line_engine();
        let mut v = Vehicle::new(7, 0, 4);
        let r = req(1, 1, 3, 0.0, 20.0);
        let out = insertion::insert_request(&engine, &v, &r).unwrap();
        v.commit_schedule(out.schedule);
        v.advance_to(&engine, 15.0);
        let state = VehicleState::capture(&v);
        let restored = state.restore();
        assert_eq!(VehicleState::capture(&restored), state);
        assert_eq!(restored.schedule, v.schedule);
        assert_eq!(restored.free_at, v.free_at);
        assert_eq!(restored.onboard, v.onboard);
    }

    #[test]
    fn trace_text_roundtrips_exactly() {
        let (_engine, trace) = record_greedy();
        let text = trace.to_text();
        let parsed = Trace::parse(&text).expect("parse recorded trace");
        assert_eq!(parsed, trace);
        // Serialization is stable: text -> trace -> text is the identity.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn checkpoint_text_roundtrips_exactly() {
        let mut vehicle = Vehicle::new(3, 1, 4);
        vehicle.free_at = 12.25;
        vehicle.executed_travel = 0.1 + 0.2; // a float that doesn't print short
        vehicle.assigned = vec![7, 9];
        let pool_req = req(11, 0, 5, 7.5, 5.0);
        let faults = crate::faults::FaultConfig {
            seed: 7,
            outage_every: 10,
            outage_batches: 3,
            solver_node_budget: 500,
            checkpoint_every: 8,
        };
        let ckpt = Checkpoint {
            algorithm: "SARD".into(),
            workload: "rush".into(),
            config: StructRideConfig::default().with_faults(faults),
            sharded: true,
            now: 25.0,
            batches: 5,
            next_request: 42,
            served: vec![1, 2, 7],
            counters: CheckpointCounters {
                handoffs: 3,
                handoff_bids: 17,
                migrations: 2,
                epoch_rolls: 4,
                labels_rescaled: 3,
                labels_rebuilt: 1,
                faults_injected: 1,
                batches_degraded: 2,
                degraded_offered: 9,
                degraded_served: 6,
            },
            shards: vec![
                ShardCheckpoint {
                    insertion_evaluations: 100,
                    groups_enumerated: 40,
                    prescreen_pruned: 8,
                    solver_fallbacks: 1,
                    routed: vec![(1, 1.5), (7, 0.30000000000000004)],
                    served: vec![1, 7],
                    fleet: vec![VehicleState::capture(&vehicle)],
                    pending: PendingSnapshot {
                        pool: vec![pool_req],
                        edges: vec![(11, 13)],
                    },
                },
                // An idle shard: every section empty.
                ShardCheckpoint::default(),
            ],
        };
        let text = ckpt.to_text();
        let parsed = Checkpoint::parse(&text).expect("parse checkpoint");
        assert_eq!(parsed, ckpt);
        // Serialization is stable: text -> checkpoint -> text is the identity.
        assert_eq!(parsed.to_text(), text);
        // The shared config tokens carry the fault plan through.
        assert_eq!(parsed.config.faults, faults);

        assert!(Checkpoint::parse("garbage").is_err());
        assert!(
            Checkpoint::parse(CHECKPOINT_HEADER_V1).is_err(),
            "a header alone is not a checkpoint"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("not a trace\n").is_err());
        let (_engine, trace) = record_greedy();
        let text = trace.to_text();
        // Truncated body (drop the final `end`): parse must fail, not panic.
        let truncated = text.trim_end().trim_end_matches("end");
        assert!(Trace::parse(truncated).is_err());
    }

    #[test]
    fn faithful_replay_is_clean() {
        let (engine, trace) = record_greedy();
        let mut dispatcher = Greedy { invert: false };
        let report = replay_trace(&engine, &mut dispatcher, &trace);
        assert!(report.is_clean(), "unexpected drift:\n{report}");
        assert_eq!(report.batches_compared, trace.batches.len());
        assert!(report.to_string().contains("zero drift"));
    }

    #[test]
    fn v1_traces_roundtrip_and_replay_with_counter_comparison_gated() {
        let (engine, mut trace) = record_greedy();
        // Render the recording in the legacy v1 format: 3-token outcome
        // lines, no prescreen counter.
        trace.meta.version = 1;
        for b in &mut trace.batches {
            b.scratch.prescreen_pruned = 0;
        }
        let text = trace.to_text();
        assert!(text.starts_with("structride-trace v1\n"), "{text}");
        assert!(!text.contains("prescreen_pruned"), "{text}");
        let parsed = Trace::parse(&text).expect("parse v1 trace");
        assert_eq!(parsed.meta.version, 1);
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_text(), text);

        // A v1 recording predates the prescreen, so its evaluation counters
        // are not comparable — replay must ignore them...
        let mut stale = parsed.clone();
        for b in &mut stale.batches {
            b.scratch.insertion_evaluations += 1000;
        }
        let mut dispatcher = Greedy { invert: false };
        let report = replay_trace(&engine, &mut dispatcher, &stale);
        assert!(report.is_clean(), "v1 counters must not drift:\n{report}");

        // ...while the same perturbation in a v2+ recording is drift.
        let (engine, mut v2) = record_greedy();
        assert_eq!(v2.meta.version, TRACE_VERSION);
        for b in &mut v2.batches {
            b.scratch.insertion_evaluations += 1000;
        }
        let mut dispatcher = Greedy { invert: false };
        let report = replay_trace(&engine, &mut dispatcher, &v2);
        assert!(!report.is_clean());
        assert!(report
            .first_divergence()
            .unwrap()
            .deltas
            .iter()
            .any(|d| d.field == "scratch.insertion_evaluations"));
    }

    #[test]
    fn diff_traces_gates_evaluation_counters_across_the_version_boundary() {
        // The sharded pipeline diffs a *recorded* trace against a fresh
        // end-to-end re-run.  Against a v1 recording, the re-run's (v2)
        // evaluation counters use the post-prescreen semantics and must not
        // count as drift; group enumeration and decisions always must.
        let (_engine, v2) = record_greedy();
        let mut v1 = v2.clone();
        v1.meta.version = 1;
        for b in &mut v1.batches {
            b.scratch.insertion_evaluations += 1000;
            b.scratch.prescreen_pruned = 0;
        }
        assert!(diff_traces(&v1, &v2).is_clean());
        assert!(diff_traces(&v2, &v1).is_clean());
        // groups_enumerated kept its meaning: still compared across versions.
        let mut v1_groups = v1.clone();
        v1_groups.batches[0].scratch.groups_enumerated += 1;
        assert!(!diff_traces(&v1_groups, &v2).is_clean());
        // Two v2 traces diff fully strictly.
        let mut v2_pruned = v2.clone();
        v2_pruned.batches[0].scratch.prescreen_pruned += 1;
        let report = diff_traces(&v2, &v2_pruned);
        assert!(!report.is_clean());
        assert!(report
            .first_divergence()
            .unwrap()
            .deltas
            .iter()
            .any(|d| d.field == "scratch"));
    }

    #[test]
    fn v2_header_and_prescreen_counter_roundtrip() {
        let (_engine, mut trace) = record_greedy();
        // Render in the legacy v2 format: prescreen counter present, no
        // traffic tokens on the config line.
        trace.meta.version = 2;
        trace.batches[0].scratch.prescreen_pruned = 17;
        let text = trace.to_text();
        assert!(text.starts_with("structride-trace v2\n"), "{text}");
        assert!(text.contains("prescreen_pruned=17"), "{text}");
        assert!(!text.contains("traffic_profile"), "{text}");
        let parsed = Trace::parse(&text).expect("parse v2 trace");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_text(), text);
        // Pre-traffic traces parse with the static traffic model.
        assert!(parsed.meta.config.traffic.is_static());
    }

    #[test]
    fn v3_traces_roundtrip_the_traffic_model() {
        let (_engine, mut trace) = record_greedy();
        // Render in the legacy v3 format: traffic tokens present, no fault
        // tokens on the config line.
        trace.meta.version = 3;
        let text = trace.to_text();
        assert!(text.starts_with("structride-trace v3\n"), "{text}");
        assert!(
            text.contains(
                "traffic_profile=none traffic_epoch_s=3600 traffic_hour_s=3600 traffic_zones=-"
            ),
            "{text}"
        );
        assert!(!text.contains("faults_seed"), "{text}");
        let parsed = Trace::parse(&text).expect("parse v3 trace");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_text(), text);

        // A non-trivial model — rush profile plus two congestion zones —
        // round-trips field for field, and a custom profile keeps all 24
        // hourly factors bit-exact.
        trace.meta.config.traffic = TrafficConfig {
            profile: TrafficProfile::Rush,
            epoch_seconds: 600.0,
            hour_scale: 450.5,
            ..TrafficConfig::default()
        }
        .with_zone(CongestionZone {
            min_x: -10.0,
            min_y: 0.25,
            max_x: 1000.0,
            max_y: 2000.0,
            factor: 1.8,
            active_from: 0.0,
            active_until: 1200.0,
        })
        .with_zone(CongestionZone {
            min_x: 50.0,
            min_y: 50.0,
            max_x: 60.0,
            max_y: 60.0,
            factor: 2.5,
            active_from: 600.0,
            active_until: f64::INFINITY,
        });
        let text = trace.to_text();
        let parsed = Trace::parse(&text).expect("parse rush trace");
        assert_eq!(parsed.meta.config.traffic, trace.meta.config.traffic);
        assert_eq!(parsed.to_text(), text);

        let mut factors = [1.0f64; 24];
        factors[7] = 1.618033988749895;
        factors[23] = 0.75;
        trace.meta.config.traffic.profile = TrafficProfile::Custom(factors);
        let text = trace.to_text();
        let parsed = Trace::parse(&text).expect("parse custom-profile trace");
        assert_eq!(
            parsed.meta.config.traffic.profile,
            trace.meta.config.traffic.profile
        );
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn v4_traces_roundtrip_the_fault_config() {
        let (_engine, mut trace) = record_greedy();
        // Fresh recordings are v4: the fault tokens ride on the config line
        // so a faulted run's replay derives the identical injection schedule.
        assert_eq!(trace.meta.version, TRACE_VERSION);
        let text = trace.to_text();
        assert!(text.starts_with("structride-trace v4\n"), "{text}");
        assert!(
            text.contains(
                "faults_seed=0 faults_outage_every=0 faults_outage_batches=0 \
                 faults_solver_budget=0 faults_checkpoint_every=0"
            ),
            "{text}"
        );
        let parsed = Trace::parse(&text).expect("parse v4 trace");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_text(), text);
        assert!(parsed.meta.config.faults.is_inert());

        // A chaos config round-trips field for field.
        trace.meta.config.faults = crate::FaultConfig {
            seed: 0xDEAD_BEEF,
            outage_every: 12,
            outage_batches: 3,
            solver_node_budget: 4096,
            checkpoint_every: 8,
        };
        let text = trace.to_text();
        let parsed = Trace::parse(&text).expect("parse chaos trace");
        assert_eq!(parsed.meta.config.faults, trace.meta.config.faults);
        assert_eq!(parsed.to_text(), text);

        // Pre-fault (v3 and older) traces parse with the inert config and
        // re-serialize byte-identically — the zero-drift guarantee for every
        // trace recorded before the fault injector existed.
        trace.meta.config.faults = crate::FaultConfig::default();
        trace.meta.version = 3;
        let v3_text = trace.to_text();
        let v3_parsed = Trace::parse(&v3_text).expect("parse v3 trace");
        assert!(v3_parsed.meta.config.faults.is_inert());
        assert_eq!(v3_parsed.to_text(), v3_text);
    }

    #[test]
    fn perturbed_replay_is_flagged_with_first_divergent_batch() {
        let (engine, trace) = record_greedy();
        let mut dispatcher = Greedy { invert: true };
        let report = replay_trace(&engine, &mut dispatcher, &trace);
        assert!(!report.is_clean(), "inverted preference must drift");
        let first = report.first_divergence().expect("a divergence");
        // The two requests of batch 0 tie on nothing — the inverted greedy
        // picks the worse vehicle immediately.
        assert_eq!(first.batch_index, 0);
        assert!(!first.deltas.is_empty());
        let fields: Vec<&str> = first.deltas.iter().map(|d| d.field.as_str()).collect();
        assert!(
            fields.iter().any(|f| f.starts_with("vehicle[")),
            "expected a vehicle-level delta, got {fields:?}"
        );
        let rendered = report.to_string();
        assert!(rendered.contains("first at batch 0"), "{rendered}");
    }

    #[test]
    fn vehicle_diff_covers_identity_fields() {
        // A replay that reorders the fleet can differ *only* in id/capacity
        // (two otherwise-identical vehicles swapped); the diff must surface
        // that rather than silently producing zero deltas.
        let a = VehicleState {
            id: 1,
            capacity: 4,
            node: 0,
            free_at: 0.0,
            onboard: 0,
            executed_travel: 0.0,
            assigned: Vec::new(),
            completed: Vec::new(),
            schedule: Vec::new(),
        };
        let b = VehicleState {
            id: 2,
            capacity: 3,
            ..a.clone()
        };
        let mut deltas = Vec::new();
        diff_vehicle(&mut deltas, &a, &b);
        let fields: Vec<&str> = deltas.iter().map(|d| d.field.as_str()).collect();
        assert!(fields.contains(&"vehicle[1].id"), "{fields:?}");
        assert!(fields.contains(&"vehicle[1].capacity"), "{fields:?}");
    }

    #[test]
    fn diff_traces_is_clean_on_identical_and_flags_perturbations() {
        let (_engine, trace) = record_greedy();
        let clean = diff_traces(&trace, &trace.clone());
        assert!(clean.is_clean(), "{clean}");
        assert_eq!(clean.batches_compared, trace.batches.len());

        // Perturb one late-batch outcome: flagged at exactly that batch.
        let mut perturbed = trace.clone();
        perturbed.batches[1].assigned.push(999);
        let report = diff_traces(&trace, &perturbed);
        assert!(!report.is_clean());
        assert_eq!(report.first_divergence().unwrap().batch_index, 1);
        assert!(report.first_divergence().unwrap().deltas[0]
            .field
            .contains("assigned"));

        // A truncated re-run (missing tail batches) is drift, not silence.
        let mut truncated = trace.clone();
        truncated.batches.pop();
        let report = diff_traces(&trace, &truncated);
        assert!(!report.is_clean());
        assert!(report
            .divergences
            .iter()
            .any(|d| d.deltas.iter().any(|x| x.field == "trace.batches")));

        // Input divergence (cascaded fleet state) is surfaced too.
        let mut shifted = trace.clone();
        shifted.batches[1].fleet_before[0].free_at += 1.0;
        let report = diff_traces(&trace, &shifted);
        assert!(!report.is_clean());
        assert!(report.divergences[0]
            .deltas
            .iter()
            .any(|d| d.field.contains("free_at")));
    }

    #[test]
    fn meta_param_lookup() {
        let (_engine, trace) = record_greedy();
        assert_eq!(trace.meta.param("nodes"), Some("6"));
        assert_eq!(trace.meta.param("missing"), None);
    }
}
