//! The exact global-assignment dispatcher.
//!
//! Where SARD negotiates proposals and the online baselines insert greedily,
//! this dispatcher builds the batch cost matrix over the certified candidate
//! sets and commits the *exact* minimum-cost assignment found by the
//! [`crate::lap`] Kuhn–Munkres kernel — the `HungarianMatching` upgrade the
//! roadmap called for.
//!
//! # Matrix construction
//!
//! Rows are the pooled requests in ascending id order; real columns are the
//! union of their candidate vehicles in ascending index order.  A cell holds
//! `α · added_cost` of inserting the request into that vehicle's current
//! schedule; request×vehicle pairs outside the candidate set are
//! [`FORBIDDEN`](crate::lap::FORBIDDEN).  Every row also gets a private
//! dummy column carrying `p_r · shortest_cost` — the unified-cost penalty of
//! leaving the request unserved — so the instance is feasible by
//! construction and the solver weighs "serve at this added cost" against
//! "keep waiting" globally rather than per request.
//!
//! Candidate sets reuse the certified fleet-index prescreen and the batched
//! [`SpEngine::many_to_many`](structride_roadnet::SpEngine::many_to_many)
//! scoring exactly as SARD does (identical scratch-counter semantics), and
//! the per-request `max_candidate_vehicles` truncation keeps the matrix at
//! candidate-neighbourhood width instead of fleet width.
//!
//! # Rounds
//!
//! The LAP gives every vehicle at most one new request, so after committing
//! an optimal matching the dispatcher rebuilds the matrix over the remaining
//! pool against the *updated* schedules and solves again, until a round
//! commits nothing.  Each round is exactly optimal for its matrix; pooling
//! (several requests sharing a vehicle) emerges across rounds through
//! insertion into the grown schedules.
//!
//! # Determinism
//!
//! Matrix construction follows the established sequential-prefilter →
//! par-map → recorded-order-merge pattern: the pool is ordered up front,
//! each row is computed independently, and rows merge back in pool order.
//! The solve itself is single-threaded with ties broken toward the lowest
//! column index — rows ordered by request id and columns by vehicle index
//! realize the documented `(cost, vehicle_id, request_id)` tie-break — so
//! decisions are bit-identical under any `RAYON_NUM_THREADS`.

use crate::config::StructRideConfig;
use crate::context::DispatchContext;
use crate::dispatcher::{BatchOutcome, Dispatcher, PendingSnapshot};
use crate::lap::{self, SolverStats};
use rayon::prelude::*;
use std::collections::HashMap;
use structride_model::{insertion, Request, RequestId, Vehicle};

/// The exact global-assignment batch dispatcher (registry key `assign`).
#[derive(Debug, Default)]
pub struct AssignDispatcher {
    config: StructRideConfig,
    /// Pool of requests carried across batches.
    pending: HashMap<RequestId, Request>,
    /// Peak cost-matrix cell count (memory accounting).
    peak_cells: usize,
}

impl AssignDispatcher {
    /// Creates the dispatcher with the given framework configuration.
    pub fn new(config: StructRideConfig) -> Self {
        AssignDispatcher {
            config,
            pending: HashMap::new(),
            peak_cells: 0,
        }
    }

    /// Number of requests currently waiting in the pool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Candidate vehicles for `request` with their insertion costs, in
    /// ascending `(added_cost, vehicle_index)` order, truncated to the
    /// configured candidate-neighbourhood width.  Mirrors SARD's certified
    /// retrieval bit for bit, including the scratch-counter semantics.
    fn candidates(
        ctx: &DispatchContext<'_>,
        vehicles: &[Vehicle],
        request: &Request,
    ) -> Vec<(usize, f64)> {
        let engine = ctx.engine;
        let mut candidates: Vec<(f64, usize)> = Vec::new();
        if let Some(index) = ctx.fleet_index {
            let network = engine.network();
            let p = network.coord(request.source);
            let survivors =
                index.certified_candidates(network, vehicles, p.x, p.y, request.pickup_deadline);
            let nodes: Vec<u32> = survivors.iter().map(|&vi| vehicles[vi].node).collect();
            let pickup_costs = engine.many_to_many(&nodes, &[request.source]);
            let mut evaluated = 0u64;
            for (&vi, &cost) in survivors.iter().zip(&pickup_costs) {
                let vehicle = &vehicles[vi];
                if vehicle.free_at + cost
                    > request.pickup_deadline + crate::fleet_index::REACH_GRACE
                {
                    continue;
                }
                evaluated += 1;
                if let Some(out) = insertion::insert_request(engine, vehicle, request) {
                    candidates.push((out.added_cost, vi));
                }
            }
            ctx.scratch.count_insertion_evaluations(evaluated);
            ctx.scratch
                .count_prescreen_pruned(vehicles.len() as u64 - evaluated);
        } else {
            for (vi, vehicle) in vehicles.iter().enumerate() {
                if let Some(out) = insertion::insert_request(engine, vehicle, request) {
                    candidates.push((out.added_cost, vi));
                }
            }
            ctx.scratch
                .count_insertion_evaluations(vehicles.len() as u64);
        }
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite costs")
                .then(a.1.cmp(&b.1))
        });
        candidates.truncate(ctx.config.max_candidate_vehicles.max(1));
        candidates
            .into_iter()
            .map(|(cost, vi)| (vi, cost))
            .collect()
    }
}

/// The seeded greedy incumbent used when the per-batch solver budget trips
/// (see [`crate::faults`]): rows in pool order each take their cheapest
/// still-free real column when that beats their own dummy, otherwise the
/// dummy.  Deterministic (ties break toward the lowest column index, same as
/// the LAP kernel) and never worse than the all-dummy assignment — the
/// anytime floor the degraded mode guarantees.
fn greedy_incumbent(costs: &[Vec<f64>], n_cols: usize) -> Vec<usize> {
    let mut taken = vec![false; n_cols];
    let mut row_to_col = Vec::with_capacity(costs.len());
    for (i, row) in costs.iter().enumerate() {
        let mut best: Option<(f64, usize)> = None;
        for (j, &c) in row[..n_cols].iter().enumerate() {
            if taken[j] || !c.is_finite() {
                continue;
            }
            if best.is_none_or(|(bc, _)| c < bc) {
                best = Some((c, j));
            }
        }
        let dummy = n_cols + i;
        match best {
            Some((c, j)) if c < row[dummy] => {
                taken[j] = true;
                row_to_col.push(j);
            }
            _ => row_to_col.push(dummy),
        }
    }
    row_to_col
}

impl Dispatcher for AssignDispatcher {
    fn name(&self) -> &'static str {
        "ASSIGN"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let _ = &self.config; // replay constructs from the trace config; ctx carries it per batch
        let now = ctx.now;
        for r in new_requests {
            self.pending.insert(r.id, r.clone());
        }
        self.pending.retain(|_, r| !r.is_expired(now));
        let mut outcome = BatchOutcome::empty();
        let mut stats = SolverStats {
            optimal: true,
            ..SolverStats::default()
        };
        if self.pending.is_empty() || vehicles.is_empty() {
            outcome.solver = Some(stats);
            return outcome;
        }

        let cost_params = ctx.config.cost;
        // The per-batch solver budget, injected purely from the batch clock
        // (see `crate::faults`).  The LAP has no node counter, so its work
        // unit is matrix cells; rounds that would blow the budget fall back
        // to the greedy incumbent instead of the exact solve.
        let budget = ctx.config.faults.solver_budget_at(ctx.batch_index);
        let mut cells_spent: u64 = 0;
        loop {
            // Sequential order-recording prefilter: the pool in ascending
            // request-id order fixes both the row order and the merge order.
            let pool: Vec<RequestId> = {
                let mut ids: Vec<RequestId> = self.pending.keys().copied().collect();
                ids.sort_unstable();
                ids
            };
            let pending_view: &HashMap<RequestId, Request> = &self.pending;
            let vehicles_view: &[Vehicle] = vehicles;
            // Par-map the expensive exact work (prescreen + insertion
            // evaluations); `collect` merges rows back in pool order.
            let rows: Vec<(RequestId, Vec<(usize, f64)>)> = pool
                .par_iter()
                .map(|&rid| {
                    let request = pending_view.get(&rid).expect("pooled request exists");
                    (rid, Self::candidates(ctx, vehicles_view, request))
                })
                .collect();

            let mut col_vehicles: Vec<usize> = rows
                .iter()
                .flat_map(|(_, cands)| cands.iter().map(|&(vi, _)| vi))
                .collect();
            col_vehicles.sort_unstable();
            col_vehicles.dedup();

            let n_rows = rows.len();
            let n_cols = col_vehicles.len();
            if stats.rounds == 0 {
                stats.rows = n_rows;
                stats.cols = n_cols;
            }
            stats.rounds += 1;
            if n_cols == 0 {
                // No request can reach any vehicle this round; the pool
                // carries to the next batch.
                break;
            }

            // Rows × (real columns + one dummy per row).  The dummy carries
            // the unified-cost penalty of leaving that request unserved.
            let costs: Vec<Vec<f64>> = rows
                .iter()
                .enumerate()
                .map(|(i, (rid, cands))| {
                    let request = &pending_view[rid];
                    let mut row = vec![lap::FORBIDDEN; n_cols + n_rows];
                    for &(vi, added_cost) in cands {
                        let j = col_vehicles.binary_search(&vi).expect("column exists");
                        row[j] = cost_params.alpha * added_cost;
                    }
                    row[n_cols + i] = cost_params.penalty_coefficient * request.direct_cost();
                    row
                })
                .collect();
            self.peak_cells = self.peak_cells.max(n_rows * (n_cols + n_rows));

            let cells = (n_rows * (n_cols + n_rows)) as u64;
            let assignment = match budget {
                Some(limit) if cells_spent.saturating_add(cells) > limit => {
                    // Deadline tripped: degrade to the greedy incumbent —
                    // still a valid assignment, provably no worse than
                    // leaving every pooled request stranded.
                    stats.fallbacks += 1;
                    stats.optimal = false;
                    greedy_incumbent(&costs, n_cols)
                }
                _ => {
                    cells_spent = cells_spent.saturating_add(cells);
                    lap::solve_dense(&costs)
                        .expect("instance is feasible by construction (per-row dummy columns)")
                        .row_to_col
                }
            };

            let mut committed = 0usize;
            for (i, (rid, _)) in rows.iter().enumerate() {
                let j = assignment[i];
                if j >= n_cols {
                    continue; // left unassigned this round
                }
                let vi = col_vehicles[j];
                let request = &self.pending[rid];
                // The LAP hands every vehicle at most one row, and commits
                // happen after the solve, so the insertion evaluated during
                // matrix construction is still exact here.
                if let Some(out) = insertion::insert_request(ctx.engine, &vehicles[vi], request) {
                    vehicles[vi].commit_schedule(out.schedule);
                    outcome.assigned.push(*rid);
                    committed += 1;
                } else {
                    debug_assert!(false, "matrix cell was feasible at construction");
                }
            }
            for rid in &outcome.assigned {
                self.pending.remove(rid);
            }
            if committed == 0 || self.pending.is_empty() {
                break;
            }
        }

        outcome.assigned.sort_unstable();
        outcome.solver = Some(stats);
        outcome
    }

    fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn memory_bytes(&self) -> usize {
        self.pending.capacity() * (std::mem::size_of::<Request>() + 16)
            + self.peak_cells * std::mem::size_of::<f64>()
    }

    fn take_pending(&mut self) -> Vec<Request> {
        let mut pool: Vec<Request> = self.pending.drain().map(|(_, r)| r).collect();
        pool.sort_unstable_by_key(|r| r.id);
        pool
    }

    fn restore_pending(&mut self, pool: Vec<Request>) {
        for r in pool {
            self.pending.insert(r.id, r);
        }
    }

    fn checkpoint_pending(&self) -> PendingSnapshot {
        let mut pool: Vec<Request> = self.pending.values().cloned().collect();
        pool.sort_unstable_by_key(|r| r.id);
        PendingSnapshot {
            pool,
            edges: Vec::new(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: PendingSnapshot) {
        for r in snapshot.pool {
            self.pending.insert(r.id, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sard::SardDispatcher;
    use crate::simulator::Simulator;
    use structride_datagen::{CityProfile, Workload, WorkloadParams};
    use structride_roadnet::{Point, RoadNetworkBuilder, SpEngine};

    fn line_engine(n: u32) -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..n {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn ctx(engine: &SpEngine, now: f64) -> DispatchContext<'_> {
        DispatchContext::new(engine, StructRideConfig::default(), now)
    }

    fn req(id: u32, s: u32, e: u32, deadline: f64, cost: f64) -> Request {
        Request::with_detour(id, s, e, 1, 0.0, cost, 2.0, deadline)
    }

    #[test]
    fn resolves_vehicle_contention_globally() {
        // Two requests both start at node 1; two unit-capacity vehicles, one
        // right there and one a hop away.  A per-request greedy grabs the
        // cheap vehicle for whichever request it scans first; the LAP weighs
        // the whole matrix and serves both via distinct vehicles.
        let engine = line_engine(8);
        let mut vehicles = vec![Vehicle::new(0, 1, 1), Vehicle::new(1, 2, 1)];
        let requests = vec![req(1, 1, 3, 200.0, 20.0), req(2, 1, 4, 200.0, 30.0)];
        let mut assign = AssignDispatcher::new(StructRideConfig::default());
        let out = assign.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert_eq!(out.assigned, vec![1, 2]);
        let solver = out.solver.expect("exact dispatcher reports telemetry");
        assert_eq!(solver.rows, 2);
        assert_eq!(solver.cols, 2);
        assert!(solver.optimal);
        assert_eq!(solver.bb_nodes, 0, "plain LAP, no branch-and-bound");
        assert!(solver.rounds >= 1);
        // Unit capacity each: the two requests went to different vehicles.
        assert!(!vehicles[0].schedule.is_empty());
        assert!(!vehicles[1].schedule.is_empty());
    }

    #[test]
    fn prefers_the_cheaper_penalty_when_service_is_uneconomic() {
        // Only one vehicle can feasibly serve either request (the other is
        // beyond both pickup deadlines), so the solver must choose which
        // request to strand: it keeps the one whose unserved penalty is
        // larger, exactly as the unified cost dictates.
        let engine = line_engine(8);
        let mut vehicles = vec![Vehicle::new(0, 1, 1), Vehicle::new(1, 6, 1)];
        let requests = vec![req(1, 1, 3, 200.0, 20.0), req(2, 1, 4, 200.0, 30.0)];
        let mut assign = AssignDispatcher::new(StructRideConfig::default());
        let out = assign.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        // Serving 2 (penalty 300) and stranding 1 (penalty 200) costs
        // 30 + 200 = 230; the other way round costs 20 + 300 = 320.
        assert_eq!(out.assigned, vec![2]);
        assert_eq!(assign.pending_requests(), 1, "request 1 waits in the pool");
    }

    #[test]
    fn leaves_unreachable_requests_pending_and_expires_them() {
        let engine = line_engine(4);
        let mut assign = AssignDispatcher::new(StructRideConfig::default());
        // No vehicles at all: the request waits in the pool.
        let r = req(1, 0, 2, 20.0, 2.0);
        let out = assign.dispatch_batch(&ctx(&engine, 0.0), &mut [], &[r]);
        assert!(out.assigned.is_empty());
        assert_eq!(assign.pending_requests(), 1);
        // Past its pickup deadline it silently leaves the pool.
        let out = assign.dispatch_batch(&ctx(&engine, 10_000.0), &mut [], &[]);
        assert!(out.assigned.is_empty());
        assert_eq!(assign.pending_requests(), 0);
    }

    #[test]
    fn pools_requests_across_rounds_onto_one_vehicle() {
        // One vehicle, two shareable corridor requests: round one commits
        // the cheaper insertion, round two inserts the second into the
        // grown schedule — both served by the single vehicle.
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let requests = vec![req(1, 0, 4, 400.0, 40.0), req(2, 1, 3, 400.0, 20.0)];
        let mut assign = AssignDispatcher::new(StructRideConfig::default());
        let out = assign.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert_eq!(out.assigned, vec![1, 2]);
        let solver = out.solver.expect("telemetry");
        assert!(solver.rounds >= 2, "pooling happens across rounds");
        assert!(vehicles[0].schedule.contains_request(1));
        assert!(vehicles[0].schedule.contains_request(2));
    }

    #[test]
    fn tripped_solver_budget_degrades_to_the_greedy_incumbent() {
        use crate::faults::FaultConfig;
        let engine = line_engine(8);
        let requests = vec![req(1, 1, 3, 200.0, 20.0), req(2, 1, 4, 200.0, 30.0)];
        // A 1-cell budget trips on the very first round.
        let degraded_config = StructRideConfig::default().with_faults(FaultConfig {
            solver_node_budget: 1,
            ..FaultConfig::default()
        });
        let mut degraded = AssignDispatcher::new(degraded_config);
        let mut fleet = vec![Vehicle::new(0, 1, 1), Vehicle::new(1, 2, 1)];
        let ctx_degraded = DispatchContext::new(&engine, degraded_config, 0.0);
        let out = degraded.dispatch_batch(&ctx_degraded, &mut fleet, &requests);
        let solver = out.solver.expect("telemetry");
        assert!(solver.fallbacks >= 1, "budget must trip");
        assert!(!solver.optimal, "a fallback solve is not proven optimal");
        // The greedy incumbent still serves both requests here (distinct
        // vehicles are each request's cheapest feasible column in turn) —
        // the anytime floor, not a dropped batch.
        assert_eq!(out.assigned, vec![1, 2]);
        // Without a budget the same batch reports zero fallbacks and stays
        // exact — the inert default changes nothing.
        let mut exact = AssignDispatcher::new(StructRideConfig::default());
        let mut fleet = vec![Vehicle::new(0, 1, 1), Vehicle::new(1, 2, 1)];
        let out = exact.dispatch_batch(&ctx(&engine, 0.0), &mut fleet, &requests);
        let solver = out.solver.expect("telemetry");
        assert_eq!(solver.fallbacks, 0);
        assert!(solver.optimal);
    }

    #[test]
    fn degraded_dispatch_is_deterministic_across_runs() {
        use crate::faults::FaultConfig;
        let w = Workload::generate(WorkloadParams {
            num_requests: 40,
            num_vehicles: 8,
            horizon: 180.0,
            scale: 0.3,
            ..WorkloadParams::small(CityProfile::NycLike)
        });
        let config = StructRideConfig::default().with_faults(FaultConfig {
            solver_node_budget: 64,
            ..FaultConfig::default()
        });
        let sim = Simulator::new(config);
        let run = || {
            let mut d = AssignDispatcher::new(config);
            sim.run(&w.engine, &w.requests, w.fresh_vehicles(), &mut d, &w.name)
        };
        let first = run();
        let second = run();
        assert_eq!(
            first.metrics.unified_cost.to_bits(),
            second.metrics.unified_cost.to_bits(),
            "degraded mode must stay run-for-run deterministic"
        );
        assert_eq!(first.served, second.served);
    }

    #[test]
    fn run_is_deterministic_and_never_pricier_than_sard_here() {
        let w = Workload::generate(WorkloadParams {
            num_requests: 60,
            num_vehicles: 10,
            horizon: 240.0,
            scale: 0.3,
            ..WorkloadParams::small(CityProfile::NycLike)
        });
        let config = StructRideConfig::default();
        let sim = Simulator::new(config);
        let run = || {
            let mut d = AssignDispatcher::new(config);
            sim.run(&w.engine, &w.requests, w.fresh_vehicles(), &mut d, &w.name)
        };
        let first = run();
        let second = run();
        assert!(first.metrics.served_requests > 0);
        assert_eq!(
            first.metrics.unified_cost.to_bits(),
            second.metrics.unified_cost.to_bits(),
            "exact assignment must be run-for-run deterministic"
        );
        assert_eq!(first.served, second.served);
        // The tracked bench acceptance in miniature: on this workload the
        // exact assignment is never pricier than SARD's heuristic.
        let mut sard = SardDispatcher::new(config);
        let sard_report = sim.run(
            &w.engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut sard,
            &w.name,
        );
        assert!(
            first.metrics.unified_cost <= sard_report.metrics.unified_cost + 1e-6,
            "assign {} vs sard {}",
            first.metrics.unified_cost,
            sard_report.metrics.unified_cost
        );
    }
}
