//! The per-batch dispatch context shared by every dispatcher.
//!
//! [`DispatchContext`] bundles everything that is *ambient* for one batch —
//! the shortest-path engine, the framework configuration, the simulation
//! clock and a set of per-batch scratch counters — into a single borrow that
//! the simulator hands to [`Dispatcher::dispatch_batch`](crate::Dispatcher).
//! Before this type existed every dispatcher took a bare `(&SpEngine, …, now)`
//! tuple and each new piece of ambient state meant a breaking signature change
//! across all seven dispatchers; the context also gives batch-parallel code
//! one `Sync` handle to close over.
//!
//! # Parallel invariants
//!
//! The context is immutable apart from [`BatchScratch`], whose counters are
//! atomics.  A `&DispatchContext` is therefore `Sync` and may be captured by
//! rayon workers: SARD's candidate-queue construction and per-vehicle group
//! enumeration, the shareability builder's exact checks and the simulator's
//! vehicle sweep all fan out under a shared `&DispatchContext` (or
//! `&SpEngine`) without additional locking.  The engine's shortest-path cache
//! is sharded internally (see `structride_roadnet::sharded`), so concurrent
//! `cost()` calls do not serialise on a global lock.
//!
//! # The replay invariant
//!
//! Determinism is not just documented, it is *enforced*: the
//! [`replay`](crate::replay) harness records `(batch, fleet-state, outcome)`
//! traces through this context and a recorded trace must replay
//! **bit-identically** — same assignments, same committed schedules, same
//! scratch counters — regardless of the worker-thread count and across
//! processes.  Any dispatcher consuming a `DispatchContext` must therefore
//! reduce its parallel stages into canonically ordered results before taking
//! decisions; shortest-path *query counts* are the only tolerated
//! worker-count-dependent observable (cache-miss races, excluded from the
//! drift diff).  CI records a quickstart trace and replays it under 1 and N
//! workers, failing on any drift (`replay verify`).

use crate::config::StructRideConfig;
use crate::fleet_index::FleetIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use structride_roadnet::SpEngine;

/// Per-batch scratch counters, updated atomically by (possibly parallel)
/// dispatch code and drained by the simulator after each batch.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Tentative insertions actually evaluated while building candidate
    /// queues (post-prescreen: vehicles pruned by the certified
    /// reachability bound are *not* counted here).
    pub insertion_evaluations: AtomicU64,
    /// Candidate groups produced by `enumerate_groups`.
    pub groups_enumerated: AtomicU64,
    /// `(request, vehicle)` pairs pruned by the certified candidate
    /// prescreen before any exact insertion was attempted.
    pub prescreen_pruned: AtomicU64,
}

/// A plain-data snapshot of [`BatchScratch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Tentative insertions actually evaluated while building candidate
    /// queues (post-prescreen).
    pub insertion_evaluations: u64,
    /// Candidate groups produced by `enumerate_groups`.
    pub groups_enumerated: u64,
    /// `(request, vehicle)` pairs pruned by the certified prescreen.
    pub prescreen_pruned: u64,
}

impl BatchScratch {
    /// Records `n` insertion evaluations.
    pub fn count_insertion_evaluations(&self, n: u64) {
        self.insertion_evaluations.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` enumerated candidate groups.
    pub fn count_groups(&self, n: u64) {
        self.groups_enumerated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` prescreen-pruned `(request, vehicle)` pairs.
    pub fn count_prescreen_pruned(&self, n: u64) {
        self.prescreen_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> ScratchStats {
        ScratchStats {
            insertion_evaluations: self.insertion_evaluations.load(Ordering::Relaxed),
            groups_enumerated: self.groups_enumerated.load(Ordering::Relaxed),
            prescreen_pruned: self.prescreen_pruned.load(Ordering::Relaxed),
        }
    }
}

/// Everything a dispatcher needs to process one batch: engine, configuration,
/// clock and scratch counters.  See the module docs for the parallel
/// invariants.
#[derive(Debug)]
pub struct DispatchContext<'a> {
    /// The shared shortest-path oracle (sharded cache, thread-safe).
    pub engine: &'a SpEngine,
    /// The framework configuration the simulator runs with.  Note that
    /// dispatchers constructed with their own configuration (e.g.
    /// `SardDispatcher::new`) dispatch with *that* one; keep the two
    /// identical — as the simulator suites do — or the context copy is
    /// informational only.
    pub config: StructRideConfig,
    /// The current simulation time (the end of the batch window).
    pub now: f64,
    /// Zero-based index of this batch within the run (diagnostics/logging;
    /// the bundled dispatchers do not branch on it).
    pub batch_index: usize,
    /// The traffic epoch the engine is serving this batch under (0 forever
    /// for static engines).  Snapshotted from the engine when the context is
    /// created — i.e. *after* the simulator's epoch roll for the batch — so
    /// dispatch code can stamp diagnostics without re-deriving the epoch.
    pub epoch: u64,
    /// Per-batch scratch counters (atomics; shared with parallel workers).
    pub scratch: BatchScratch,
    /// The persistent fleet index, when the caller maintains one.  Dispatchers
    /// use it for the certified candidate prescreen; with `None` they fall
    /// back to the full-fleet scan (the two paths are bit-identical in
    /// dispatch decisions — the index only prunes provably infeasible pairs).
    pub fleet_index: Option<&'a FleetIndex>,
}

impl<'a> DispatchContext<'a> {
    /// Creates a context for a stand-alone dispatch call (batch index 0).
    pub fn new(engine: &'a SpEngine, config: StructRideConfig, now: f64) -> Self {
        Self::for_batch(engine, config, now, 0)
    }

    /// Creates the context for batch `batch_index` at simulation time `now`.
    pub fn for_batch(
        engine: &'a SpEngine,
        config: StructRideConfig,
        now: f64,
        batch_index: usize,
    ) -> Self {
        DispatchContext {
            engine,
            config,
            now,
            batch_index,
            epoch: engine.current_epoch(),
            scratch: BatchScratch::default(),
            fleet_index: None,
        }
    }

    /// Attaches a persistent fleet index, enabling the certified candidate
    /// prescreen in dispatchers that support it.
    pub fn with_fleet_index(mut self, index: &'a FleetIndex) -> Self {
        self.fleet_index = Some(index);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    fn tiny_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(10.0, 0.0));
        b.add_bidirectional(0, 1, 5.0).unwrap();
        SpEngine::new(b.build().unwrap())
    }

    #[test]
    fn context_carries_clock_and_config() {
        let engine = tiny_engine();
        let config = StructRideConfig::default();
        let ctx = DispatchContext::for_batch(&engine, config, 42.0, 7);
        assert_eq!(ctx.now, 42.0);
        assert_eq!(ctx.batch_index, 7);
        assert_eq!(ctx.epoch, 0, "static engines pin epoch 0");
        assert_eq!(ctx.config.batch_period, config.batch_period);
        assert_eq!(ctx.engine.cost(0, 1), 5.0);
    }

    #[test]
    fn scratch_counters_accumulate_atomically_across_threads() {
        let engine = tiny_engine();
        let ctx = DispatchContext::new(&engine, StructRideConfig::default(), 0.0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = &ctx;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        ctx.scratch.count_insertion_evaluations(1);
                    }
                    ctx.scratch.count_groups(5);
                });
            }
        });
        let stats = ctx.scratch.snapshot();
        assert_eq!(stats.insertion_evaluations, 4000);
        assert_eq!(stats.groups_enumerated, 20);
    }

    #[test]
    fn context_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<DispatchContext<'_>>();
    }
}
