//! Deterministic fault injection: the degraded-mode contract of the
//! framework.
//!
//! A production dispatcher has to answer "what happens when a region's
//! solver dies mid-rush-hour?" — and in this codebase the answer must be
//! *measurable and replay-pinned*, not an ops anecdote.  This module follows
//! the same purity contract as `structride_roadnet::traffic`: every injected
//! fault is a pure function of `(FaultConfig, batch clock)` alone.  No RNG
//! state, no wall clock, no worker-count dependence — so a faulted run
//! records and replays bit-identically, and two processes derive the exact
//! same failure schedule from the config serialized into the trace.
//!
//! Three failure classes are modelled, each with a graceful-degradation
//! path implemented by the layer that owns the state:
//!
//! * **Shard outage** ([`FaultPlan::down_shard`]): a shard is marked down
//!   for a window of batches.  `ShardedRun` reroutes the requests that
//!   would have been routed to it through the existing handoff-bid auction
//!   to the best live shard, freezes the dead shard's fleet, and on
//!   recovery re-syncs its fleet index and re-admits the region.
//! * **Solver deadline** ([`FaultPlan::solver_node_budget`]): the exact
//!   solvers (`AssignDispatcher`'s LAP rounds, RTV's B&B group choice) get
//!   a per-batch node budget.  On trip they fall back to their seeded
//!   incumbent (greedy assignment / greedy+swap), recording a
//!   [`SolverStats::fallbacks`](crate::lap::SolverStats) count — anytime
//!   behavior with a never-worse-than-incumbent floor.
//! * **Checkpoint boundary** ([`FaultPlan::checkpoint`]): the simulators
//!   serialize full state at these batch boundaries (see
//!   [`crate::replay`]'s checkpoint codec), so a crashed run resumes
//!   bit-identically instead of losing everything since batch 0.

use serde::{Deserialize, Serialize};

/// Configuration of the deterministic fault injector.
///
/// The default is **inert**: no outages, no solver budget, no checkpoint
/// cadence.  Every pre-fault pipeline is bit-identical under the inert
/// config — the same "default is a no-op" guarantee
/// [`TrafficConfig::is_static`](structride_roadnet::TrafficConfig::is_static)
/// gives the traffic model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed mixed into the outage schedule (which shard goes down in which
    /// window).  Irrelevant while `outage_every` is 0.
    pub seed: u64,
    /// Outage cadence: every `outage_every` batches a new outage window
    /// opens (0 disables outages).  The first window is skipped so every
    /// run starts healthy.
    pub outage_every: u32,
    /// How many batches each outage lasts (clamped to the cadence so
    /// windows never overlap).
    pub outage_batches: u32,
    /// Per-batch node budget for the exact solvers (0 = unlimited).  When
    /// the budget trips, the dispatcher falls back to its seeded incumbent
    /// and counts a fallback.
    pub solver_node_budget: u64,
    /// Checkpoint cadence in batches (0 = never).  A checkpoint boundary
    /// falls *before* dispatching batch `k·checkpoint_every` (k ≥ 1), i.e.
    /// it captures the state left by the previous batch.
    pub checkpoint_every: u32,
}

/// The faults scheduled for one batch: a pure function of
/// `(FaultConfig, batch index, shard count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The shard that is down this batch, if any.
    pub down_shard: Option<usize>,
    /// `true` when this batch opens a new outage window (the injection
    /// event itself, as opposed to an ongoing outage) — what the
    /// `faults_injected` counters count.
    pub outage_starts: bool,
    /// `true` when the down shard comes back next batch — the recovery
    /// boundary where the fleet index is re-synced.
    pub last_down_batch: bool,
    /// The per-batch node budget for exact solvers (`None` = unlimited).
    pub solver_node_budget: Option<u64>,
    /// `true` when a checkpoint is due at the *start* of this batch.
    pub checkpoint: bool,
}

/// SplitMix64: the tiny, seedable, stateless mixer used to pick the down
/// shard per outage window.  Chosen for the same reason the datagen crate
/// uses stateless hashing: identical output on every platform and call
/// order, with no shared RNG state to race on.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultConfig {
    /// True when this config injects nothing: the inert default under which
    /// every pipeline is bit-identical to its pre-fault behavior.
    pub fn is_inert(&self) -> bool {
        self.outage_every == 0 && self.solver_node_budget == 0 && self.checkpoint_every == 0
    }

    /// The effective outage length: windows never overlap, so an outage
    /// lasts at most `outage_every - 1` batches (the window's last batch is
    /// always healthy, giving the recovered shard a re-admission batch
    /// before the next window can open).
    fn effective_outage_batches(&self) -> u32 {
        self.outage_batches.min(self.outage_every.saturating_sub(1))
    }

    /// The fault plan for `batch` of a run with `n_shards` shards (pass 1
    /// for the monolithic simulator — it has no shard to lose, so only the
    /// solver budget and checkpoint cadence apply).
    ///
    /// Purity contract: this is a pure function of its arguments — same
    /// `(config, batch, n_shards)` ⇒ same plan, on any thread, any worker
    /// count, any process (property-tested below and in
    /// `crates/core/tests/`).
    pub fn plan_at(&self, batch: usize, n_shards: usize) -> FaultPlan {
        let mut plan = FaultPlan {
            solver_node_budget: (self.solver_node_budget > 0).then_some(self.solver_node_budget),
            checkpoint: self.checkpoint_every > 0
                && batch > 0
                && batch.is_multiple_of(self.checkpoint_every as usize),
            ..FaultPlan::default()
        };
        let len = self.effective_outage_batches();
        if self.outage_every > 0 && len > 0 && n_shards > 1 {
            let every = self.outage_every as usize;
            let window = batch / every;
            let offset = batch % every;
            // Window 0 is skipped: runs start healthy.
            if window >= 1 && offset < len as usize {
                let victim = (splitmix64(self.seed ^ window as u64) % n_shards as u64) as usize;
                plan.down_shard = Some(victim);
                plan.outage_starts = offset == 0;
                plan.last_down_batch = offset + 1 == len as usize;
            }
        }
        plan
    }

    /// The deterministic "chaos" preset: all three failure classes at once
    /// — periodic shard outages, a solver node budget tight enough to trip
    /// on busy batches, and a checkpoint cadence.  The replay CLI's
    /// `--chaos` flag and the bench chaos row share this exact schedule, so
    /// the plan they derive is the one serialized into traces, checkpoints
    /// and baselines.
    pub fn chaos() -> Self {
        FaultConfig {
            seed: 7,
            outage_every: 10,
            outage_batches: 3,
            solver_node_budget: 500,
            checkpoint_every: 8,
        }
    }

    /// The solver node budget for `batch` (`None` = unlimited) — the
    /// channel dispatchers read through
    /// [`DispatchContext`](crate::context::DispatchContext):
    /// `ctx.config.faults.solver_budget_at(ctx.batch_index)`.
    pub fn solver_budget_at(&self, batch: usize) -> Option<u64> {
        self.plan_at(batch, 1).solver_node_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos() -> FaultConfig {
        FaultConfig::chaos()
    }

    #[test]
    fn default_is_inert_and_plans_nothing() {
        let config = FaultConfig::default();
        assert!(config.is_inert());
        for batch in 0..100 {
            for shards in [1, 3, 8] {
                assert_eq!(config.plan_at(batch, shards), FaultPlan::default());
            }
            assert_eq!(config.solver_budget_at(batch), None);
        }
    }

    #[test]
    fn first_window_is_healthy_and_outages_respect_the_cadence() {
        let config = chaos();
        // Window 0 (batches 0..10): never down.
        for batch in 0..10 {
            assert_eq!(config.plan_at(batch, 3).down_shard, None, "batch {batch}");
        }
        // Window 1: down for batches 10, 11, 12, healthy 13..20.
        for batch in 10..13 {
            let plan = config.plan_at(batch, 3);
            assert!(plan.down_shard.is_some(), "batch {batch}");
            assert_eq!(plan.outage_starts, batch == 10);
            assert_eq!(plan.last_down_batch, batch == 12);
        }
        for batch in 13..20 {
            assert_eq!(config.plan_at(batch, 3).down_shard, None, "batch {batch}");
        }
        // The victim is constant within a window.
        let victims: Vec<_> = (10..13)
            .map(|b| config.plan_at(b, 3).down_shard.unwrap())
            .collect();
        assert!(victims.windows(2).all(|w| w[0] == w[1]));
        assert!(victims[0] < 3);
    }

    #[test]
    fn outage_never_fills_a_whole_window() {
        // outage_batches >= outage_every clamps: the last batch of every
        // window stays healthy so recovery always gets a re-admission batch.
        let config = FaultConfig {
            outage_every: 4,
            outage_batches: 9,
            ..chaos()
        };
        for window in 1..5 {
            let last = window * 4 + 3;
            assert_eq!(config.plan_at(last, 3).down_shard, None, "batch {last}");
            assert!(config.plan_at(last - 1, 3).down_shard.is_some());
        }
    }

    #[test]
    fn monolithic_and_single_shard_runs_never_lose_a_shard() {
        let config = chaos();
        for batch in 0..60 {
            assert_eq!(config.plan_at(batch, 1).down_shard, None);
            // The solver budget and checkpoints still apply.
            assert_eq!(config.plan_at(batch, 1).solver_node_budget, Some(500));
        }
    }

    #[test]
    fn checkpoints_fall_on_the_cadence_and_never_at_batch_zero() {
        let config = chaos();
        for batch in 0..40 {
            let due = config.plan_at(batch, 3).checkpoint;
            assert_eq!(due, batch > 0 && batch % 8 == 0, "batch {batch}");
        }
    }

    /// The purity contract: the full injection schedule is identical across
    /// re-derivations and across threads (the cross-worker-count half is
    /// exercised end-to-end in `crates/core/tests/`).
    #[test]
    fn plan_is_pure_across_rederivation_and_threads() {
        let config = chaos();
        let schedule = |shards: usize| -> Vec<FaultPlan> {
            (0..200).map(|b| config.plan_at(b, shards)).collect()
        };
        let reference = schedule(3);
        assert_eq!(schedule(3), reference, "re-derivation");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reference = reference.clone();
                std::thread::spawn(move || {
                    let again: Vec<FaultPlan> = (0..200).map(|b| chaos().plan_at(b, 3)).collect();
                    assert_eq!(again, reference);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("purity check thread");
        }
    }

    #[test]
    fn different_seeds_eventually_pick_different_victims() {
        let a = FaultConfig { seed: 1, ..chaos() };
        let b = FaultConfig { seed: 2, ..chaos() };
        let victims = |c: &FaultConfig| -> Vec<usize> {
            (1..40)
                .filter_map(|w| c.plan_at(w * 10, 8).down_shard)
                .collect()
        };
        assert_ne!(victims(&a), victims(&b));
    }
}
