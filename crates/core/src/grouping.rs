//! Request grouping — the modified additive tree of Algorithm 2.
//!
//! Given the set of requests proposed to one vehicle, the grouping algorithm
//! enumerates the feasible request groups level by level: level 1 holds the
//! singletons, and a level-`l` group is formed by merging two level-`l−1`
//! groups whose union (a) has exactly `l` members, (b) is a clique in the
//! shareability graph (Observation 2 / Lemma IV.1) and (c) still admits a
//! feasible schedule.  Unlike the original additive tree (GAS), only **one**
//! schedule is kept per node: the new member — chosen as the *maximum-degree*
//! request of the group, so that low-shareability requests anchor the
//! sub-schedule first — is inserted into its parent group's schedule with the
//! linear-insertion operator.

use crate::context::DispatchContext;
use std::collections::HashMap;
use structride_model::insertion::insert_into;
use structride_model::{Request, RequestId, Schedule, Vehicle};
use structride_sharegraph::clique::is_clique;
use structride_sharegraph::ShareabilityGraph;

/// One node of the grouping tree: a feasible group of requests for a specific
/// vehicle, together with the single schedule maintained for it.
#[derive(Debug, Clone)]
pub struct CandidateGroup {
    /// Sorted member request ids.
    pub members: Vec<RequestId>,
    /// The vehicle's prospective schedule serving its existing commitments
    /// plus this group.
    pub schedule: Schedule,
    /// Total travel cost of [`CandidateGroup::schedule`] from the vehicle's
    /// current state.
    pub travel_cost: f64,
    /// Increase over the vehicle's current planned cost.
    pub added_cost: f64,
    /// Summed direct (solo) cost of the member requests — the denominator of
    /// the sharing ratio tie-breaker.
    pub members_direct_cost: f64,
}

impl CandidateGroup {
    /// Sharing ratio `cost(P) / Σ_r cost(r)` used as the tie-breaker in SARD's
    /// acceptance phase (Example 4): smaller means the schedule serves its
    /// members with less overhead.
    pub fn sharing_ratio(&self) -> f64 {
        structride_sharegraph::loss::sharing_ratio(self.travel_cost, self.members_direct_cost)
    }
}

/// Enumerates all feasible request groups for `vehicle` from the proposal
/// `pool`, following Algorithm 2.
///
/// * `graph` — the current shareability graph (clique pruning + degrees);
/// * `requests` — lookup table for the pooled request ids;
/// * `max_group_size` — the level cap `c` (the paper uses the vehicle seat
///   capacity; rider counts are additionally enforced by the feasibility
///   checks).
///
/// The result contains every level (singletons included), each with exactly
/// one maintained schedule.
///
/// Takes the batch's [`DispatchContext`] (for the engine and the scratch
/// counters); the function itself is read-only apart from the atomic counters,
/// so SARD calls it from parallel per-vehicle workers.
pub fn enumerate_groups(
    ctx: &DispatchContext<'_>,
    graph: &ShareabilityGraph,
    requests: &HashMap<RequestId, Request>,
    pool: &[RequestId],
    vehicle: &Vehicle,
    max_group_size: usize,
) -> Vec<CandidateGroup> {
    let engine = ctx.engine;
    let base_cost = vehicle.planned_cost(engine);
    if !base_cost.is_finite() {
        return Vec::new();
    }
    let mut all: Vec<CandidateGroup> = Vec::new();

    // --- level 1: singletons (Algorithm 2, lines 2–3, with the vehicle's
    //     current schedule as the starting point per Algorithm 3 line 12). ---
    let mut current: Vec<CandidateGroup> = Vec::new();
    let mut pool_sorted: Vec<RequestId> = pool.to_vec();
    pool_sorted.sort_unstable();
    pool_sorted.dedup();
    for &id in &pool_sorted {
        let Some(request) = requests.get(&id) else {
            continue;
        };
        let Some(out) = structride_model::insertion::insert_request(engine, vehicle, request)
        else {
            continue;
        };
        current.push(CandidateGroup {
            members: vec![id],
            schedule: out.schedule,
            travel_cost: out.new_travel_cost,
            added_cost: out.added_cost,
            members_direct_cost: request.direct_cost(),
        });
    }
    all.extend(current.iter().cloned());

    // --- levels 2..=c (Algorithm 2, lines 4–11). ---
    let cap = max_group_size.max(1);
    for level in 2..=cap {
        if current.len() < 2 {
            break;
        }
        // Index of the previous level by member set for parent lookups.
        let parent_index: HashMap<Vec<RequestId>, usize> = current
            .iter()
            .enumerate()
            .map(|(i, g)| (g.members.clone(), i))
            .collect();
        let mut next: Vec<CandidateGroup> = Vec::new();
        let mut seen: HashMap<Vec<RequestId>, ()> = HashMap::new();

        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                let mut union: Vec<RequestId> = current[i]
                    .members
                    .iter()
                    .chain(current[j].members.iter())
                    .copied()
                    .collect();
                union.sort_unstable();
                union.dedup();
                if union.len() != level {
                    continue;
                }
                if seen.contains_key(&union) {
                    continue;
                }
                seen.insert(union.clone(), ());
                // Lemma IV.1(b): the group must be a clique.
                if !is_clique(graph, &union) {
                    continue;
                }
                // Pick the maximum-shareability member as the one inserted last
                // (line 8); ties broken by id for determinism.
                let &insert_last = union
                    .iter()
                    .max_by_key(|&&id| (graph.degree(id), std::cmp::Reverse(id)))
                    .expect("non-empty group");
                let mut parent_members: Vec<RequestId> = union
                    .iter()
                    .copied()
                    .filter(|&m| m != insert_last)
                    .collect();
                parent_members.sort_unstable();
                // Lemma IV.1(a): the parent group must itself be valid; if the
                // previous level does not contain it, the group is pruned.
                let Some(&parent_idx) = parent_index.get(&parent_members) else {
                    continue;
                };
                let Some(request) = requests.get(&insert_last) else {
                    continue;
                };
                let parent = &current[parent_idx];
                let Some(out) = insert_into(
                    engine,
                    vehicle.node,
                    vehicle.free_at,
                    vehicle.onboard,
                    vehicle.capacity,
                    &parent.schedule,
                    request,
                ) else {
                    continue;
                };
                next.push(CandidateGroup {
                    members: union,
                    schedule: out.schedule,
                    travel_cost: out.new_travel_cost,
                    added_cost: out.new_travel_cost - base_cost,
                    members_direct_cost: parent.members_direct_cost + request.direct_cost(),
                });
            }
        }
        all.extend(next.iter().cloned());
        current = next;
    }
    ctx.scratch.count_groups(all.len() as u64);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StructRideConfig;
    use structride_roadnet::{Point, RoadNetworkBuilder, SpEngine};

    fn ctx(engine: &SpEngine) -> DispatchContext<'_> {
        DispatchContext::new(engine, StructRideConfig::default(), 0.0)
    }
    use structride_sharegraph::{pairwise_shareable, ShareabilityGraph};

    fn line_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..6 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..6u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn req(id: u32, s: u32, e: u32, cost: f64, gamma: f64) -> Request {
        Request::with_detour(id, s, e, 1, 0.0, cost, gamma, 300.0)
    }

    fn build_graph(engine: &SpEngine, reqs: &[Request]) -> ShareabilityGraph {
        let mut g = ShareabilityGraph::new();
        for r in reqs {
            g.add_node(r.id);
        }
        for i in 0..reqs.len() {
            for j in (i + 1)..reqs.len() {
                if pairwise_shareable(engine, &reqs[i], &reqs[j], 4) {
                    g.add_edge(reqs[i].id, reqs[j].id);
                }
            }
        }
        g
    }

    fn request_map(reqs: &[Request]) -> HashMap<RequestId, Request> {
        reqs.iter().map(|r| (r.id, r.clone())).collect()
    }

    #[test]
    fn singletons_always_enumerated_when_feasible() {
        let engine = line_engine();
        let reqs = vec![req(1, 0, 4, 40.0, 1.8), req(2, 1, 3, 20.0, 1.8)];
        let graph = build_graph(&engine, &reqs);
        let vehicle = Vehicle::new(0, 0, 4);
        let groups = enumerate_groups(
            &ctx(&engine),
            &graph,
            &request_map(&reqs),
            &[1, 2],
            &vehicle,
            4,
        );
        let singles: Vec<_> = groups.iter().filter(|g| g.members.len() == 1).collect();
        assert_eq!(singles.len(), 2);
        let pairs: Vec<_> = groups.iter().filter(|g| g.members.len() == 2).collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].members, vec![1, 2]);
        assert!(pairs[0].schedule.is_well_formed());
        // Sharing the line trip costs no more than serving r1 alone + deadhead.
        assert!(pairs[0].travel_cost <= 40.0 + 1e-9);
    }

    #[test]
    fn non_clique_groups_are_pruned() {
        let engine = line_engine();
        // r1 and r3 are not shareable (opposite directions, tight deadlines),
        // so no group may contain both even though each pairs with r2.
        let reqs = vec![
            req(1, 0, 4, 40.0, 1.5),
            req(2, 1, 3, 20.0, 2.5),
            req(3, 4, 2, 20.0, 1.1),
        ];
        let graph = build_graph(&engine, &reqs);
        assert!(!graph.has_edge(1, 3));
        let vehicle = Vehicle::new(0, 0, 4);
        let groups = enumerate_groups(
            &ctx(&engine),
            &graph,
            &request_map(&reqs),
            &[1, 2, 3],
            &vehicle,
            4,
        );
        assert!(groups
            .iter()
            .all(|g| !(g.members.contains(&1) && g.members.contains(&3))));
    }

    #[test]
    fn group_size_capped_by_max_group_size() {
        let engine = line_engine();
        let reqs = vec![
            req(1, 0, 5, 50.0, 2.0),
            req(2, 1, 4, 30.0, 2.0),
            req(3, 2, 5, 30.0, 2.5),
        ];
        let graph = build_graph(&engine, &reqs);
        let vehicle = Vehicle::new(0, 0, 6);
        let groups = enumerate_groups(
            &ctx(&engine),
            &graph,
            &request_map(&reqs),
            &[1, 2, 3],
            &vehicle,
            2,
        );
        assert!(groups.iter().all(|g| g.members.len() <= 2));
    }

    #[test]
    fn groups_respect_vehicle_capacity_through_feasibility() {
        let engine = line_engine();
        let reqs = vec![
            Request::with_detour(1, 0, 5, 2, 0.0, 50.0, 2.0, 300.0),
            Request::with_detour(2, 1, 4, 2, 0.0, 30.0, 2.0, 300.0),
        ];
        let graph = {
            let mut g = ShareabilityGraph::new();
            g.add_edge(1, 2);
            g
        };
        // Capacity 3 cannot hold the overlapping 2+2 riders.
        let vehicle = Vehicle::new(0, 0, 3);
        let groups = enumerate_groups(
            &ctx(&engine),
            &graph,
            &request_map(&reqs),
            &[1, 2],
            &vehicle,
            4,
        );
        assert!(groups.iter().all(|g| g.members.len() == 1));
    }

    #[test]
    fn added_cost_accounts_for_existing_schedule() {
        let engine = line_engine();
        let existing = req(10, 0, 2, 20.0, 2.0);
        let mut vehicle = Vehicle::new(0, 0, 4);
        vehicle.commit_schedule(Schedule::direct(&existing));
        let newcomer = req(1, 2, 4, 20.0, 2.0);
        let graph = {
            let mut g = ShareabilityGraph::new();
            g.add_node(1);
            g
        };
        let groups = enumerate_groups(
            &ctx(&engine),
            &graph,
            &request_map(&[newcomer]),
            &[1],
            &vehicle,
            4,
        );
        assert_eq!(groups.len(), 1);
        // Appending the new trip adds exactly its own 20 s.
        assert!((groups[0].added_cost - 20.0).abs() < 1e-9);
        assert!(groups[0].schedule.contains_request(10));
        assert!(groups[0].schedule.contains_request(1));
    }

    #[test]
    fn empty_pool_or_unknown_ids_yield_no_groups() {
        let engine = line_engine();
        let graph = ShareabilityGraph::new();
        let vehicle = Vehicle::new(0, 0, 4);
        let groups = enumerate_groups(&ctx(&engine), &graph, &HashMap::new(), &[], &vehicle, 4);
        assert!(groups.is_empty());
        let groups = enumerate_groups(&ctx(&engine), &graph, &HashMap::new(), &[7, 8], &vehicle, 4);
        assert!(groups.is_empty());
    }

    #[test]
    fn sharing_ratio_reflects_efficiency() {
        let engine = line_engine();
        let reqs = vec![req(1, 0, 4, 40.0, 1.8), req(2, 1, 3, 20.0, 1.8)];
        let graph = build_graph(&engine, &reqs);
        let vehicle = Vehicle::new(0, 0, 4);
        let groups = enumerate_groups(
            &ctx(&engine),
            &graph,
            &request_map(&reqs),
            &[1, 2],
            &vehicle,
            4,
        );
        let pair = groups.iter().find(|g| g.members.len() == 2).unwrap();
        // Serving both for ~40 s of driving vs. 60 s of direct cost.
        assert!(pair.sharing_ratio() < 1.0);
    }
}
