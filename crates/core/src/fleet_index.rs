//! The persistent fleet index behind certified candidate retrieval.
//!
//! The paper's §II-B retrieves candidate vehicles for a request with a grid
//! range query instead of scanning the whole fleet.  [`FleetIndex`] is that
//! structure made *persistent*: a [`GridIndex`] over the current vehicle
//! positions, built **once per run** and updated incrementally as vehicles
//! advance, commit schedules, hand off or migrate — retiring the
//! grid-rebuild-per-batch of the earlier pipelines.
//!
//! # The reachability certificate
//!
//! A vehicle is kept for a request only when its certified lower bound on
//! pickup arrival meets the deadline:
//!
//! ```text
//! free_at + min_time_per_meter × euclid(vehicle, pickup) ≤ deadline + grace
//! ```
//!
//! [`RoadNetwork::min_time_per_meter`] guarantees `cost(u, v) ≥
//! min_time_per_meter × euclid(u, v)` in exact arithmetic, and every
//! insertion position's pickup-arrival time is `≥ free_at + cost(node,
//! pickup)` (schedule legs are shortest paths, so the triangle inequality
//! applies), so a vehicle failing the bound provably fails *every* insertion
//! position — `insert_request` would return `None`.  The surviving set is
//! therefore exactly the feasible-relevant subset of the full scan, and any
//! dispatch decision computed over it is **bit-identical** to the full-fleet
//! sweep.  The one-second [`REACH_GRACE`] absorbs floating-point rounding in
//! the schedule-leg summations with a huge margin (the exact-arithmetic
//! slack is `TIME_EPS`-sized).
//!
//! The same certificate bounds the *radius* of the grid range query: every
//! survivor satisfies `euclid ≤ (deadline + grace − free_floor) /
//! min_time_per_meter` where `free_floor = min(free_at)` over the fleet, so
//! one range query at that radius followed by the per-vehicle bound check
//! returns the complete surviving set.
//!
//! # Index lifecycle
//!
//! Entries are keyed by **slot index** (position in the caller's vehicle
//! slice), matching the `vi` indices every dispatcher already sorts and
//! tie-breaks on.  [`FleetIndex::sync`] refreshes positions and the free
//! floor after the per-batch advance sweep (a no-op relocation is skipped);
//! [`FleetIndex::rebuild`] re-keys from scratch after operations that shift
//! slot indices (idle-vehicle migration removes/pushes slice entries).
//! [`FleetIndex::check_consistency`] asserts the index ↔ fleet invariant and
//! is run by debug builds of the simulators after every batch.

use structride_model::Vehicle;
use structride_roadnet::RoadNetwork;
use structride_spatial::GridIndex;

/// Grace (seconds) added to the pickup deadline when prescreening bidders
/// and candidates by the certified reachability lower bound: generous
/// against float rounding, far below any real slack in the workloads.
pub const REACH_GRACE: f64 = 1.0;

/// A persistent spatial index over the fleet's current positions plus the
/// cached per-meter travel-time floor of the road network.
#[derive(Debug)]
pub struct FleetIndex {
    grid: GridIndex,
    bbox: (f64, f64, f64, f64),
    cells: u32,
    /// `min(free_at)` over the indexed fleet (∞ for an empty fleet).
    free_floor: f64,
    /// Cached [`RoadNetwork::min_time_per_meter`] (an O(E) scan).
    min_tpm: f64,
}

impl FleetIndex {
    /// Builds the index over `vehicles` (keyed by slot position) inside the
    /// given bounding box.  `bbox` must be non-degenerate (use
    /// [`structride_spatial::RegionGrid::padded_bbox`]) and `cells ≥ 1`.
    pub fn build(
        bbox: (f64, f64, f64, f64),
        cells: u32,
        network: &RoadNetwork,
        vehicles: &[Vehicle],
    ) -> FleetIndex {
        let mut index = FleetIndex {
            grid: GridIndex::new(bbox.0, bbox.1, bbox.2, bbox.3, cells.max(1)),
            bbox,
            cells: cells.max(1),
            free_floor: f64::INFINITY,
            min_tpm: network.min_time_per_meter(),
        };
        index.insert_all(network, vehicles);
        index
    }

    fn insert_all(&mut self, network: &RoadNetwork, vehicles: &[Vehicle]) {
        let mut floor = f64::INFINITY;
        for (slot, vehicle) in vehicles.iter().enumerate() {
            let p = network.coord(vehicle.node);
            self.grid.insert(slot as u64, p.x, p.y);
            if vehicle.free_at < floor {
                floor = vehicle.free_at;
            }
        }
        self.free_floor = floor;
    }

    /// Refreshes positions and the free floor after vehicles moved in place
    /// (the per-batch advance sweep, post-dispatch commits).  Slot indices
    /// must not have shifted since the last build/rebuild; relocations whose
    /// coordinates are unchanged are skipped.
    pub fn sync(&mut self, network: &RoadNetwork, vehicles: &[Vehicle]) {
        debug_assert_eq!(self.grid.len(), vehicles.len(), "slot count drifted");
        let mut floor = f64::INFINITY;
        for (slot, vehicle) in vehicles.iter().enumerate() {
            let p = network.coord(vehicle.node);
            if self.grid.location(slot as u64) != Some((p.x, p.y)) {
                self.grid.insert(slot as u64, p.x, p.y);
            }
            if vehicle.free_at < floor {
                floor = vehicle.free_at;
            }
        }
        self.free_floor = floor;
    }

    /// Re-keys the whole index — required after the vehicle slice was
    /// reordered or resized (idle-vehicle migration removes and pushes
    /// entries, shifting every later slot index).
    pub fn rebuild(&mut self, network: &RoadNetwork, vehicles: &[Vehicle]) {
        self.grid = GridIndex::new(
            self.bbox.0,
            self.bbox.1,
            self.bbox.2,
            self.bbox.3,
            self.cells,
        );
        self.insert_all(network, vehicles);
    }

    /// Number of indexed vehicles.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// True when no vehicle is indexed.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// `min(free_at)` over the indexed fleet, as of the last build/sync.
    pub fn free_floor(&self) -> f64 {
        self.free_floor
    }

    /// The cached certified travel-time-per-meter floor of the network.
    pub fn min_time_per_meter(&self) -> f64 {
        self.min_tpm
    }

    /// Replaces the cached travel-time-per-meter floor — called at a traffic
    /// epoch boundary with the rate recomputed over the **reweighted**
    /// network, so the reachability certificate keeps holding exactly under
    /// the epoch's weights.  Passing a rate that is not a true per-meter
    /// lower bound of the current weights would break prescreen soundness;
    /// the simulators only ever pass
    /// `SpEngine::min_time_per_meter()`, which is recomputed from the
    /// epoch's own network.
    pub fn set_min_time_per_meter(&mut self, rate: f64) {
        self.min_tpm = rate;
    }

    /// Visits every indexed slot within `radius` meters of `(x, y)` (exact
    /// Euclidean test on true coordinates) — the raw range query behind
    /// shortlists that rank survivors themselves.
    pub fn for_each_in_range(&self, x: f64, y: f64, radius: f64, f: impl FnMut(u64)) {
        self.grid.for_each_in_range(x, y, radius, f);
    }

    /// The certified candidate set for a pickup at `(x, y)` with the given
    /// deadline: every slot whose vehicle could possibly reach the pickup in
    /// time (see the module docs), in ascending slot order.
    ///
    /// The result is a pure function of the vehicle positions/free times and
    /// the arguments — independent of grid granularity and insertion
    /// history — which is what lets a replay rebuild the index from a fleet
    /// snapshot and reproduce the recorded prescreen counters exactly.
    pub fn certified_candidates(
        &self,
        network: &RoadNetwork,
        vehicles: &[Vehicle],
        x: f64,
        y: f64,
        deadline: f64,
    ) -> Vec<usize> {
        debug_assert_eq!(self.grid.len(), vehicles.len(), "index out of sync");
        let pickup = structride_roadnet::Point::new(x, y);
        let keep = |vehicle: &Vehicle| {
            let lb = self.min_tpm * network.coord(vehicle.node).distance(&pickup);
            vehicle.free_at + lb <= deadline + REACH_GRACE
        };
        let mut survivors: Vec<usize> = Vec::new();
        let slack = deadline + REACH_GRACE - self.free_floor;
        if self.min_tpm <= 0.0 || !slack.is_finite() {
            // No useful radius bound: fall back to the full prescreen sweep
            // (with `min_tpm == 0` the bound still prunes on `free_at`).
            survivors.extend(
                vehicles
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| keep(v))
                    .map(|(slot, _)| slot),
            );
            return survivors;
        }
        if slack < 0.0 {
            // Even the freest vehicle teleported to the pickup is late.
            return survivors;
        }
        self.grid
            .for_each_in_range(x, y, slack / self.min_tpm, |slot| {
                if keep(&vehicles[slot as usize]) {
                    survivors.push(slot as usize);
                }
            });
        survivors.sort_unstable();
        survivors
    }

    /// Asserts the index ↔ fleet invariant: one entry per slot, located at
    /// the vehicle's current node coordinates, and a free floor equal to the
    /// fleet minimum.  Called by the simulators after every batch in debug
    /// builds.
    pub fn check_consistency(&self, network: &RoadNetwork, vehicles: &[Vehicle]) {
        assert_eq!(
            self.grid.len(),
            vehicles.len(),
            "fleet index holds {} entries for {} vehicles",
            self.grid.len(),
            vehicles.len()
        );
        let mut floor = f64::INFINITY;
        for (slot, vehicle) in vehicles.iter().enumerate() {
            let p = network.coord(vehicle.node);
            assert_eq!(
                self.grid.location(slot as u64),
                Some((p.x, p.y)),
                "slot {slot} (vehicle {}) is indexed away from its node",
                vehicle.id
            );
            if vehicle.free_at < floor {
                floor = vehicle.free_at;
            }
        }
        assert_eq!(
            self.free_floor.to_bits(),
            floor.to_bits(),
            "free floor drifted from the fleet minimum"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structride_roadnet::{Point, RoadNetworkBuilder};
    use structride_spatial::RegionGrid;

    fn line_network(n: u32) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..n {
            b.add_bidirectional(i - 1, i, 50.0).unwrap();
        }
        b.build().unwrap()
    }

    fn fleet(net: &RoadNetwork, nodes: &[u32]) -> Vec<Vehicle> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                assert!((node as usize) < net.node_count());
                let mut v = Vehicle::new(i as u32, node, 4);
                v.free_at = i as f64;
                v
            })
            .collect()
    }

    fn index_for(net: &RoadNetwork, vehicles: &[Vehicle]) -> FleetIndex {
        FleetIndex::build(
            RegionGrid::padded_bbox(net.bounding_box()),
            16,
            net,
            vehicles,
        )
    }

    /// Brute-force reference for the certified set: the bound applied to
    /// every vehicle directly.
    fn brute_force(
        net: &RoadNetwork,
        vehicles: &[Vehicle],
        min_tpm: f64,
        x: f64,
        y: f64,
        deadline: f64,
    ) -> Vec<usize> {
        vehicles
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                let lb = min_tpm * net.coord(v.node).distance(&Point::new(x, y));
                v.free_at + lb <= deadline + REACH_GRACE
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn certified_candidates_match_the_brute_force_sweep() {
        let net = line_network(30);
        let vehicles = fleet(&net, &[0, 3, 7, 12, 18, 25, 29, 2, 14, 22]);
        let index = index_for(&net, &vehicles);
        let min_tpm = net.min_time_per_meter();
        assert!(min_tpm > 0.0);
        for target in [0u32, 5, 15, 29] {
            let p = net.coord(target);
            for deadline in [0.5, 30.0, 200.0, 2000.0] {
                let got = index.certified_candidates(&net, &vehicles, p.x, p.y, deadline);
                let want = brute_force(&net, &vehicles, min_tpm, p.x, p.y, deadline);
                assert_eq!(got, want, "target {target} deadline {deadline}");
            }
        }
        // A generous deadline keeps everyone; a hopeless one keeps no one.
        let p = net.coord(15);
        assert_eq!(
            index
                .certified_candidates(&net, &vehicles, p.x, p.y, 1.0e9)
                .len(),
            vehicles.len()
        );
        assert!(index
            .certified_candidates(&net, &vehicles, p.x, p.y, -10.0)
            .is_empty());
    }

    #[test]
    fn sync_tracks_moves_and_free_floor() {
        let net = line_network(20);
        let mut vehicles = fleet(&net, &[1, 5, 9]);
        let mut index = index_for(&net, &vehicles);
        index.check_consistency(&net, &vehicles);
        assert_eq!(index.free_floor(), 0.0);

        vehicles[0].node = 17;
        vehicles[0].free_at = 42.0;
        vehicles[2].free_at = 0.25;
        index.sync(&net, &vehicles);
        index.check_consistency(&net, &vehicles);
        assert_eq!(index.free_floor(), 0.25);
        let p = net.coord(17);
        let near: Vec<usize> = {
            let mut out = Vec::new();
            index.for_each_in_range(p.x, p.y, 1.0, |slot| out.push(slot as usize));
            out
        };
        assert_eq!(near, vec![0]);
    }

    #[test]
    fn rebuild_rekeys_after_slice_reordering() {
        let net = line_network(20);
        let mut vehicles = fleet(&net, &[1, 5, 9, 13]);
        let mut index = index_for(&net, &vehicles);
        // Migration shape: remove a middle entry, push it at the back.
        let migrated = vehicles.remove(1);
        vehicles.push(migrated);
        index.rebuild(&net, &vehicles);
        index.check_consistency(&net, &vehicles);
        assert_eq!(index.len(), 4);
    }

    #[test]
    #[should_panic(expected = "indexed away")]
    fn consistency_check_catches_a_stale_position() {
        let net = line_network(10);
        let mut vehicles = fleet(&net, &[2, 6]);
        let index = index_for(&net, &vehicles);
        vehicles[1].node = 8; // moved without sync
        index.check_consistency(&net, &vehicles);
    }

    /// Satellite: prescreen soundness under congestion.  When an epoch roll
    /// scales travel times up and `min_time_per_meter` tightens with the
    /// reweighted network, no vehicle that can actually make the pickup
    /// deadline (by true shortest-path time under the new weights) may ever
    /// be pruned by the certified prescreen.
    #[test]
    fn tightened_rate_never_prunes_a_feasible_candidate() {
        let base = line_network(30);
        let vehicles = fleet(&base, &[0, 3, 7, 12, 18, 25, 29, 2, 14, 22]);
        let mut index = index_for(&base, &vehicles);
        // A deterministic pseudo-random walk over epoch multipliers,
        // including spatially varying ones (a congestion box on the west
        // half of the line).
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..40 {
            let uniform = 1.0 + next() * 1.5;
            let west_extra = 1.0 + next() * 2.0;
            let epoch_net = base.reweighted(|from, to| {
                let mid_x = (from.x + to.x) * 0.5;
                if mid_x < 1500.0 {
                    uniform * west_extra
                } else {
                    uniform
                }
            });
            // The epoch-boundary update: the rate recomputed over the
            // reweighted network, exactly as the simulators do it.
            index.set_min_time_per_meter(epoch_net.min_time_per_meter());
            let target = (next() * 30.0) as u32 % 30;
            let deadline = next() * 400.0;
            let p = epoch_net.coord(target);
            let survivors = index.certified_candidates(&epoch_net, &vehicles, p.x, p.y, deadline);
            // Reference: true feasibility under the epoch's weights.
            let arrivals = structride_roadnet::dijkstra::sssp_reverse(&epoch_net, target);
            for (slot, vehicle) in vehicles.iter().enumerate() {
                let feasible = vehicle.free_at + arrivals[vehicle.node as usize] <= deadline;
                if feasible {
                    assert!(
                        survivors.contains(&slot),
                        "feasible slot {slot} pruned (deadline {deadline}, target {target})"
                    );
                }
            }
            // And the survivors still match the brute-force bound sweep.
            let want = brute_force(
                &epoch_net,
                &vehicles,
                epoch_net.min_time_per_meter(),
                p.x,
                p.y,
                deadline,
            );
            assert_eq!(survivors, want);
        }
    }

    #[test]
    fn zero_rate_networks_fall_back_to_the_free_at_sweep() {
        // Two coincident nodes: no positive-length edge, min_tpm == 0.
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(0.0, 0.0));
        b.add_edge(0, 1, 5.0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.min_time_per_meter(), 0.0);
        let mut vehicles = fleet(&net, &[0, 1]);
        vehicles[1].free_at = 100.0;
        let index = index_for(&net, &vehicles);
        let got = index.certified_candidates(&net, &vehicles, 0.0, 0.0, 10.0);
        assert_eq!(got, vec![0], "late vehicle pruned on free_at alone");
    }
}
