//! The batched dynamic ridesharing simulator (the BDRP driver of §II).
//!
//! The simulator owns the clock: it partitions the request stream into batches
//! of Δ seconds, moves vehicles along their committed schedules between
//! batches (fanning the per-vehicle sweep out over worker threads — each
//! vehicle's movement is independent of every other's), hands every batch to
//! the configured [`Dispatcher`] through a fresh
//! [`DispatchContext`](crate::DispatchContext), keeps running empty batches
//! while carried-over requests may still be assignable, stops as soon as the
//! request stream is exhausted and no dispatcher-held request is waiting, and
//! finally executes all remaining schedules and produces the [`RunMetrics`]
//! the paper reports (unified cost, service rate, running time, #shortest-path
//! queries, memory).

use crate::config::StructRideConfig;
use crate::context::DispatchContext;
use crate::dispatcher::Dispatcher;
use crate::fleet_index::FleetIndex;
use crate::metrics::RunMetrics;
use crate::replay::{Checkpoint, CheckpointCounters, ShardCheckpoint, TraceRecorder, VehicleState};
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;
use structride_model::{unified_cost, Request, RequestId, Vehicle};
use structride_roadnet::SpEngine;

/// The output of one simulated run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// The run-level metrics (what the figures plot).
    pub metrics: RunMetrics,
    /// Final vehicle states (schedules fully executed).
    pub vehicles: Vec<Vehicle>,
    /// The requests that were assigned to a vehicle.
    pub served: HashSet<RequestId>,
}

/// The batched simulation driver.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: StructRideConfig,
}

impl Simulator {
    /// Creates a simulator with the given framework configuration.
    pub fn new(config: StructRideConfig) -> Self {
        Simulator { config }
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &StructRideConfig {
        &self.config
    }

    /// Runs `dispatcher` over the request stream.
    ///
    /// `requests` may be in any order; they are processed by release time.
    /// `vehicles` is the initial fleet (consumed and returned fully executed).
    pub fn run(
        &self,
        engine: &SpEngine,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        dispatcher: &mut dyn Dispatcher,
        workload_name: &str,
    ) -> SimulationReport {
        self.run_impl(
            engine,
            requests,
            vehicles,
            dispatcher,
            workload_name,
            None,
            None,
            None,
        )
    }

    /// Like [`Simulator::run`], but records every `(batch, fleet-state,
    /// outcome)` tuple into `recorder` for the replay harness (see
    /// [`crate::replay`]).  Recording captures full fleet snapshots around
    /// every dispatch call, so use it on replay-sized workloads, not in the
    /// benchmark hot path.
    pub fn run_recorded(
        &self,
        engine: &SpEngine,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        dispatcher: &mut dyn Dispatcher,
        workload_name: &str,
        recorder: &mut TraceRecorder,
    ) -> SimulationReport {
        self.run_impl(
            engine,
            requests,
            vehicles,
            dispatcher,
            workload_name,
            Some(recorder),
            None,
            None,
        )
    }

    /// Like [`Simulator::run`], but hands a [`Checkpoint`] to `sink` at every
    /// batch boundary the fault plan's checkpoint cadence marks (see
    /// [`FaultConfig::checkpoint_every`](crate::faults::FaultConfig)).
    /// Capture is a pure read of the simulation state, so a checkpointing
    /// run finishes bit-identically to a non-checkpointing one.
    pub fn run_with_checkpoints(
        &self,
        engine: &SpEngine,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        dispatcher: &mut dyn Dispatcher,
        workload_name: &str,
        sink: &mut dyn FnMut(Checkpoint),
    ) -> SimulationReport {
        self.run_impl(
            engine,
            requests,
            vehicles,
            dispatcher,
            workload_name,
            None,
            Some(sink),
            None,
        )
    }

    /// Like [`Simulator::run_recorded`], but also hands a [`Checkpoint`] to
    /// `sink` at every boundary the fault plan's cadence marks — the replay
    /// CLI's record flow, which needs the reference trace and a mid-run
    /// checkpoint from a single run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recorded_with_checkpoints(
        &self,
        engine: &SpEngine,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        dispatcher: &mut dyn Dispatcher,
        workload_name: &str,
        recorder: &mut TraceRecorder,
        sink: &mut dyn FnMut(Checkpoint),
    ) -> SimulationReport {
        self.run_impl(
            engine,
            requests,
            vehicles,
            dispatcher,
            workload_name,
            Some(recorder),
            Some(sink),
            None,
        )
    }

    /// Continues a run from `checkpoint` and finishes it bit-identically to
    /// the uninterrupted run (deterministic metrics, served set, final fleet;
    /// wall-clock diagnostics excluded, as in replay comparisons).
    ///
    /// `requests` must be the same request stream the original run was
    /// started with (checkpoints carry a cursor into its release-sorted
    /// order, not the future requests), `dispatcher` a freshly constructed
    /// dispatcher of the checkpointed algorithm, and `engine` an engine over
    /// the same network — its traffic epoch is primed to the checkpoint
    /// clock before the first resumed batch.  The fleet is restored from the
    /// checkpoint; the caller supplies none.
    pub fn resume(
        &self,
        engine: &SpEngine,
        requests: &[Request],
        dispatcher: &mut dyn Dispatcher,
        checkpoint: &Checkpoint,
    ) -> SimulationReport {
        self.run_impl(
            engine,
            requests,
            Vec::new(),
            dispatcher,
            &checkpoint.workload.clone(),
            None,
            None,
            Some(checkpoint),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_impl(
        &self,
        engine: &SpEngine,
        requests: &[Request],
        mut vehicles: Vec<Vehicle>,
        dispatcher: &mut dyn Dispatcher,
        workload_name: &str,
        mut recorder: Option<&mut TraceRecorder>,
        mut sink: Option<&mut dyn FnMut(Checkpoint)>,
        resume_from: Option<&Checkpoint>,
    ) -> SimulationReport {
        let mut ordered: Vec<Request> = requests.to_vec();
        ordered.sort_by(|a, b| {
            a.release
                .partial_cmp(&b.release)
                .expect("finite release times")
        });

        let sp_before = engine.stats().index_queries;
        let delta = self.config.batch_period.max(1e-3);
        // Keep offering empty batches until no request could still be waiting
        // for pickup (its pickup deadline bounds how long it can linger).
        let horizon_end = ordered
            .iter()
            .map(|r| r.pickup_deadline)
            .fold(0.0_f64, f64::max);

        let mut served: HashSet<RequestId> = HashSet::new();
        let mut next = 0usize;
        let mut now = 0.0;
        let mut batches = 0usize;
        let mut dispatch_time = 0.0f64;
        let mut insertion_evaluations = 0u64;
        let mut groups_enumerated = 0u64;
        let mut prescreen_pruned = 0u64;
        let mut solver_fallbacks = 0u64;

        // Resume: reinstate every piece of decision-bearing state the
        // checkpoint carries, exactly as the capture below wrote it.  The
        // loop then continues from `now += delta` just as the uninterrupted
        // run would have.
        if let Some(ckpt) = resume_from {
            assert!(
                !ckpt.sharded,
                "a sharded checkpoint resumes through ShardedSimulator::resume"
            );
            assert_eq!(
                ckpt.shards.len(),
                1,
                "a monolithic checkpoint holds exactly one shard section"
            );
            let s = &ckpt.shards[0];
            vehicles = s.fleet.iter().map(VehicleState::restore).collect();
            dispatcher.restore_snapshot(s.pending.clone());
            served = ckpt.served.iter().copied().collect();
            next = ckpt.next_request;
            now = ckpt.now;
            batches = ckpt.batches;
            insertion_evaluations = s.insertion_evaluations;
            groups_enumerated = s.groups_enumerated;
            prescreen_pruned = s.prescreen_pruned;
            solver_fallbacks = s.solver_fallbacks;
        }

        // A traffic-enabled run needs an engine that actually carries the
        // model (the caller builds it with `SpEngineBuilder::traffic`);
        // mismatches would silently drop congestion, so fail loudly in
        // debug builds.
        debug_assert!(
            engine.traffic_config() == Some(self.config.traffic)
                || (engine.traffic_config().is_none() && self.config.traffic.is_static()),
            "engine traffic model must match config.traffic"
        );

        // The persistent fleet index: built once, then kept in sync with the
        // fleet incrementally batch over batch instead of being rebuilt.
        let bbox = structride_spatial::RegionGrid::padded_bbox(engine.network().bounding_box());
        let mut fleet_index =
            FleetIndex::build(bbox, self.config.grid_cells, engine.network(), &vehicles);
        if engine.traffic_active() {
            // The build above cached the free-flow base rate; pin the
            // prescreen to the engine's current epoch instead.
            fleet_index.set_min_time_per_meter(engine.min_time_per_meter());
        }
        // Prime a resumed engine to the checkpoint's epoch: the epoch is a
        // pure function of (traffic config, batch clock), so one roll lands
        // exactly where the uninterrupted run's incremental rolls did.
        if resume_from.is_some() && engine.roll_epoch_to(now) {
            fleet_index.set_min_time_per_meter(engine.min_time_per_meter());
        }

        while next < ordered.len() || now < horizon_end {
            now += delta;
            // Roll the traffic epoch from the batch clock (no-op for static
            // engines).  The roll happens at this quiescent point — before
            // the advance sweep and the dispatch — so the whole batch,
            // including schedule execution, sees one consistent epoch, and
            // the certified prescreen rate follows the reweighted network.
            if engine.roll_epoch_to(now) {
                fleet_index.set_min_time_per_meter(engine.min_time_per_meter());
            }
            // Vehicles move along their committed schedules up to the batch
            // end.  Each vehicle only reads the shared engine and mutates its
            // own state, so the sweep fans out over the fleet.
            vehicles.par_iter_mut().for_each(|v| {
                v.advance_to(engine, now);
            });
            fleet_index.sync(engine.network(), &vehicles);
            // Collect the requests released during this batch window.
            let start = next;
            while next < ordered.len() && ordered[next].release <= now {
                next += 1;
            }
            let batch = &ordered[start..next];
            if let Some(rec) = recorder.as_deref_mut() {
                rec.batch_started(batches, now, batch, &vehicles);
            }
            let ctx = DispatchContext::for_batch(engine, self.config, now, batches)
                .with_fleet_index(&fleet_index);
            let t0 = Instant::now();
            let outcome = dispatcher.dispatch_batch(&ctx, &mut vehicles, batch);
            dispatch_time += t0.elapsed().as_secs_f64();
            let scratch = ctx.scratch.snapshot();
            if let Some(rec) = recorder.as_deref_mut() {
                rec.batch_finished(&outcome, &vehicles, scratch);
            }
            // The dispatcher commits schedules (changing `free_at` but not
            // positions: vehicles only move in the advance sweep), so the
            // index resyncs before the *next* prescreen consumes it.  In
            // debug builds verify it never drifted from the fleet.
            fleet_index.sync(engine.network(), &vehicles);
            #[cfg(debug_assertions)]
            fleet_index.check_consistency(engine.network(), &vehicles);
            insertion_evaluations += scratch.insertion_evaluations;
            groups_enumerated += scratch.groups_enumerated;
            prescreen_pruned += scratch.prescreen_pruned;
            solver_fallbacks += outcome.solver.map_or(0, |st| st.fallbacks);
            batches += 1;
            served.extend(outcome.assigned);
            // Once the request stream is exhausted and the dispatcher holds no
            // carried-over request, no later batch can assign anything — stop
            // instead of spinning until the last pickup deadline.  Side
            // effect (intended): dispatchers that do per-batch background
            // work, such as DARM's idle-vehicle repositioning, no longer run
            // it over the empty tail — where it could only add dead-head
            // travel, never serve a request.
            if next == ordered.len() && dispatcher.pending_requests() == 0 {
                break;
            }
            // Checkpoint boundary: `batches` was just incremented, so the
            // plan's flag asks "is a checkpoint due before dispatching batch
            // `batches`?" — capturing the state this iteration left behind.
            // Placed after the early exit so an already-finished run never
            // writes a checkpoint.  Capture is a pure read (fleet snapshot,
            // non-destructive dispatcher snapshot), so runs with and without
            // a sink stay bit-identical.
            if self.config.faults.plan_at(batches, 1).checkpoint {
                if let Some(sink) = sink.as_deref_mut() {
                    let mut served_sorted: Vec<RequestId> = served.iter().copied().collect();
                    served_sorted.sort_unstable();
                    sink(Checkpoint {
                        algorithm: dispatcher.name().to_string(),
                        workload: workload_name.to_string(),
                        config: self.config,
                        sharded: false,
                        now,
                        batches,
                        next_request: next,
                        served: served_sorted,
                        counters: CheckpointCounters::default(),
                        shards: vec![ShardCheckpoint {
                            insertion_evaluations,
                            groups_enumerated,
                            prescreen_pruned,
                            solver_fallbacks,
                            routed: Vec::new(),
                            served: Vec::new(),
                            fleet: vehicles.iter().map(VehicleState::capture).collect(),
                            pending: dispatcher.checkpoint_pending(),
                        }],
                    });
                }
            }
            // Safety valve: Δ is positive, so this always terminates, but guard
            // against pathological configurations anyway.
            if batches > 10_000_000 {
                break;
            }
        }

        // Let every committed schedule play out.
        let drain_until = now + horizon_end + 1.0e6;
        vehicles.par_iter_mut().for_each(|v| {
            v.advance_to(engine, drain_until);
        });

        let total_travel: f64 = vehicles.iter().map(|v| v.executed_travel).sum();
        let unserved_direct_cost: f64 = ordered
            .iter()
            .filter(|r| !served.contains(&r.id))
            .map(Request::direct_cost)
            .sum();
        let metrics = RunMetrics {
            algorithm: dispatcher.name().to_string(),
            workload: workload_name.to_string(),
            total_requests: ordered.len(),
            served_requests: served.len(),
            total_travel,
            unserved_direct_cost,
            unified_cost: unified_cost(&self.config.cost, total_travel, unserved_direct_cost),
            running_time: dispatch_time,
            sp_queries: engine.stats().index_queries.saturating_sub(sp_before),
            memory_bytes: dispatcher.memory_bytes(),
            batches,
            insertion_evaluations,
            groups_enumerated,
            prescreen_pruned,
            solver_fallbacks,
        };
        SimulationReport {
            metrics,
            vehicles,
            served,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::BatchOutcome;
    use crate::sard::SardDispatcher;
    use structride_datagen::{CityProfile, Workload, WorkloadParams};
    use structride_model::insertion;

    /// A minimal greedy insertion dispatcher used to exercise the simulator
    /// without pulling in the baselines crate (which depends on this one).
    struct GreedyInsertion;

    impl Dispatcher for GreedyInsertion {
        fn name(&self) -> &'static str {
            "greedy-test"
        }

        fn dispatch_batch(
            &mut self,
            ctx: &DispatchContext<'_>,
            vehicles: &mut [Vehicle],
            new_requests: &[Request],
        ) -> BatchOutcome {
            let engine = ctx.engine;
            let mut outcome = BatchOutcome::empty();
            for r in new_requests {
                let mut best: Option<(usize, structride_model::InsertionOutcome)> = None;
                for (vi, v) in vehicles.iter().enumerate() {
                    if let Some(out) = insertion::insert_request(engine, v, r) {
                        let better = best
                            .as_ref()
                            .map(|(_, b)| out.added_cost < b.added_cost)
                            .unwrap_or(true);
                        if better {
                            best = Some((vi, out));
                        }
                    }
                }
                if let Some((vi, out)) = best {
                    vehicles[vi].commit_schedule(out.schedule);
                    outcome.assigned.push(r.id);
                }
            }
            outcome
        }
    }

    fn tiny_workload() -> Workload {
        Workload::generate(WorkloadParams {
            num_requests: 60,
            num_vehicles: 10,
            horizon: 240.0,
            scale: 0.3,
            ..WorkloadParams::small(CityProfile::NycLike)
        })
    }

    #[test]
    fn greedy_run_produces_consistent_metrics() {
        let w = tiny_workload();
        let sim = Simulator::new(StructRideConfig::default());
        let report = sim.run(
            &w.engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut GreedyInsertion,
            &w.name,
        );
        let m = &report.metrics;
        assert_eq!(m.total_requests, w.requests.len());
        assert_eq!(m.served_requests, report.served.len());
        assert!(m.served_requests > 0, "some requests must be served");
        assert!(m.service_rate() <= 1.0);
        assert!(m.total_travel > 0.0);
        assert!(m.unified_cost >= m.total_travel);
        assert!(m.batches > 0);
        // Every served request was actually dropped off by some vehicle.
        let completed: HashSet<RequestId> = report
            .vehicles
            .iter()
            .flat_map(|v| v.completed.iter().copied())
            .collect();
        for id in &report.served {
            assert!(
                completed.contains(id),
                "assigned request {id} was delivered"
            );
        }
        // Vehicles finished their schedules.
        assert!(report.vehicles.iter().all(|v| v.schedule.is_empty()));
    }

    #[test]
    fn sard_run_on_synthetic_workload_beats_or_matches_greedy() {
        let w = tiny_workload();
        let config = StructRideConfig::default();
        let sim = Simulator::new(config);
        let greedy = sim.run(
            &w.engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut GreedyInsertion,
            &w.name,
        );
        let mut sard = SardDispatcher::new(config);
        let sard_report = sim.run(
            &w.engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut sard,
            &w.name,
        );
        // The batch-mode, structure-aware dispatcher should never serve fewer
        // requests than the myopic per-request greedy on this easy workload.
        assert!(
            sard_report.metrics.served_requests + 2 >= greedy.metrics.served_requests,
            "SARD {} vs greedy {}",
            sard_report.metrics.served_requests,
            greedy.metrics.served_requests
        );
        assert!(sard_report.metrics.sp_queries > 0);
        assert!(sard_report.metrics.memory_bytes > 0);
        // Schedules left on vehicles satisfy all constraints during execution:
        // every assigned rider was delivered.
        let delivered: HashSet<RequestId> = sard_report
            .vehicles
            .iter()
            .flat_map(|v| v.completed.iter().copied())
            .collect();
        for id in &sard_report.served {
            assert!(delivered.contains(id));
        }
    }

    #[test]
    fn stops_issuing_batches_once_stream_drained_and_nothing_pending() {
        // Requests all release within the first 10 s but have pickup deadlines
        // hundreds of batches away.  Before the early exit the simulator kept
        // spinning empty batches until the last deadline; now it stops as soon
        // as the stream is drained and the dispatcher holds nothing.
        let w = tiny_workload();
        let released_by = w.requests.iter().map(|r| r.release).fold(0.0_f64, f64::max);
        let horizon_end = w
            .requests
            .iter()
            .map(|r| r.pickup_deadline)
            .fold(0.0_f64, f64::max);
        let config = StructRideConfig::default();
        assert!(
            horizon_end > released_by + 10.0 * config.batch_period,
            "workload must leave a tail worth skipping ({released_by} .. {horizon_end})"
        );
        let sim = Simulator::new(config);
        // GreedyInsertion holds no pool, so the run must end right after the
        // batch that consumes the last release.
        let report = sim.run(
            &w.engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut GreedyInsertion,
            &w.name,
        );
        let release_batches = (released_by / config.batch_period).ceil() as usize + 1;
        assert!(
            report.metrics.batches <= release_batches,
            "{} batches for a stream drained after ~{release_batches}",
            report.metrics.batches
        );
        // SARD carries a working pool; it may run longer, but never past the
        // last pickup deadline.
        let mut sard = SardDispatcher::new(config);
        let sard_report = sim.run(
            &w.engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut sard,
            &w.name,
        );
        let deadline_batches = (horizon_end / config.batch_period).ceil() as usize + 1;
        assert!(sard_report.metrics.batches <= deadline_batches);
        // Every assigned rider is still delivered despite the early exit.
        let delivered: HashSet<RequestId> = sard_report
            .vehicles
            .iter()
            .flat_map(|v| v.completed.iter().copied())
            .collect();
        for id in &sard_report.served {
            assert!(delivered.contains(id));
        }
    }

    #[test]
    fn traffic_run_rolls_epochs_and_stays_deterministic() {
        use structride_roadnet::{SpEngineBuilder, TrafficConfig, TrafficProfile};
        let w = tiny_workload();
        // Compress the rush curve so the 240 s horizon sweeps several hours:
        // one epoch (= one profile hour) every 30 s of simulation time.
        let traffic = TrafficConfig {
            profile: TrafficProfile::Rush,
            epoch_seconds: 30.0,
            hour_scale: 30.0,
            ..TrafficConfig::default()
        };
        let config = StructRideConfig::default().with_traffic(traffic);
        let engine = SpEngineBuilder::new()
            .traffic(traffic)
            .build(w.engine.network().clone());
        let sim = Simulator::new(config);
        let run = |engine: &structride_roadnet::SpEngine| {
            let mut sard = SardDispatcher::new(config);
            sim.run(engine, &w.requests, w.fresh_vehicles(), &mut sard, &w.name)
        };
        let first = run(&engine);
        assert!(engine.epoch_rolls() > 0, "horizon must cross epochs");
        assert!(first.metrics.served_requests > 0);
        // Re-running on a fresh engine reproduces the identical outcome:
        // the epoch is a pure function of (config, batch clock).
        let engine2 = SpEngineBuilder::new()
            .traffic(traffic)
            .build(w.engine.network().clone());
        let second = run(&engine2);
        assert_eq!(
            first.metrics.served_requests,
            second.metrics.served_requests
        );
        assert_eq!(
            first.metrics.unified_cost.to_bits(),
            second.metrics.unified_cost.to_bits()
        );
        assert_eq!(first.served, second.served);
    }

    #[test]
    fn zero_requests_runs_cleanly() {
        let w = tiny_workload();
        let sim = Simulator::new(StructRideConfig::default());
        let report = sim.run(
            &w.engine,
            &[],
            w.fresh_vehicles(),
            &mut GreedyInsertion,
            "empty",
        );
        assert_eq!(report.metrics.total_requests, 0);
        assert_eq!(report.metrics.served_requests, 0);
        assert_eq!(report.metrics.service_rate(), 0.0);
        assert_eq!(report.metrics.total_travel, 0.0);
    }
}
