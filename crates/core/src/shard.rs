//! Multi-region sharded dispatch: parallel per-shard pipelines with
//! cross-shard handoff.
//!
//! The [`Simulator`](crate::Simulator) drives one monolithic pipeline — one
//! dispatcher over the whole fleet and the whole request stream.  This
//! module partitions both by *region*: a
//! [`RegionGrid`](structride_spatial::RegionGrid) divides the road network's
//! bounding box into `k` regions, each region maps 1:1 to a **shard** owning
//! its own [`SpEngine`] (independent shortest-path cache), its own
//! [`Dispatcher`] instance and the slice of the fleet currently homed there.
//! [`ShardedSimulator`] advances all shards **batch-synchronously**: every
//! batch, all shards move their vehicles to the shared clock, the released
//! requests are routed to shards, every shard dispatches its sub-batch in
//! parallel (shard-level fan-out via recursive [`rayon::join`], plus each
//! dispatcher's own internal parallelism), and the per-shard outcomes are
//! merged in shard order.  Per-shard [`RunMetrics`] are aggregated with
//! [`RunMetrics::merge`] into one report.
//!
//! # Per-shard sub-network engines
//!
//! Every shard owns a **halo-clipped** [`SpEngine`] instead of a clone of
//! the whole network: the global road network and one canonical hub-label
//! index are built **once** per run (the label construction itself is
//! parallel, see [`HubLabels::build`]) and shared across shards via `Arc`;
//! each shard additionally carries the [`SubNetwork`] induced by its
//! *halo* — its region plus every vertex within
//! [`ShardingConfig::handoff_band`] of it ([`halo_vertices`]) — and a
//! compact restriction of the label index to those vertices.  Setup cost and
//! label memory therefore no longer scale as `k×|V|`.
//!
//! The **halo-correctness invariant**: any query a shard issues against its
//! *local* traffic (its own region's requests plus boundary requests offered
//! through the handoff band) has both endpoints inside the halo and is
//! answered by the per-shard slice.  Queries that legally leave the halo —
//! trip destinations in another region, vehicles that drove or migrated
//! across a border — fall back to the `Arc`-shared global index.  Both paths
//! return **bit-identical** floats to a whole-network engine (the slice
//! vectors are verbatim copies), which is what keeps sharded runs
//! replay-exact across this refactor; see
//! [`SpEngineBuilder::build_clipped`](structride_roadnet::SpEngineBuilder).
//!
//! # Cross-shard handoff
//!
//! Requests are routed to the shard of their pickup region.  A request whose
//! origin lies within [`ShardingConfig::handoff_band`] of another region is a
//! *boundary request*: it is offered to every shard whose region the band
//! reaches, each candidate shard bids the cheapest exact insertion cost over
//! a **top-m shortlist** of its fleet, and the **best bid wins
//! deterministically** (strictly lower `added_cost` wins; ties go to the
//! lowest shard id; if no candidate has a feasible insertion the home shard
//! keeps the request).  The shortlist replaces the old full-fleet exact
//! insertion scan: a per-batch [`GridIndex`] over vehicle positions is range
//! queried with the certified reachability radius derived from
//! [`RoadNetwork::min_time_per_meter`] — a vehicle outside it provably
//! cannot meet the pickup deadline from its release state, so dropping it
//! cannot change any bid — and the survivors are ranked by that lower bound
//! and capped at [`ShardingConfig::top_m`].  The radius prescreen is exact;
//! only the cap can (deliberately, for bounded bidding work on very large
//! fleets) exclude a feasible bidder.  Idle
//! vehicles migrate between adjacent shards to rebalance load when
//! [`ShardingConfig::rebalance`] is on: after each batch, a shard whose
//! dispatcher holds no pending requests donates its lowest-id idle vehicles
//! (up to [`ShardingConfig::max_migrations_per_batch`]) to adjacent shards
//! holding more pending requests than vehicles.  Migration transfers
//! *dispatch ownership only* — the vehicle keeps its position and committed
//! schedule; the receiving shard's insertion costs naturally price the
//! distance.
//!
//! # Determinism and the replay invariant
//!
//! Sharding preserves the pipeline's replay invariant (see
//! [`crate::replay`]):
//!
//! * **Worker-count independence.** Every parallel stage reduces into
//!   canonically ordered results: routing bids are pure reads of exact
//!   shortest-path costs, sub-batch order preserves release order, outcome
//!   merging walks shards in ascending id order, and migration is a
//!   sequential deterministic rule.  A sharded run is bit-identical across
//!   rayon worker counts (enforced by `replay verify --shards` in CI and by
//!   the `sharding` integration tests).
//! * **Single-shard reduction.** With one region the router degenerates to
//!   the identity, no bids or migrations happen, and the batch loop is
//!   exactly the monolithic [`Simulator`](crate::Simulator) loop — the
//!   aggregate report matches field for field (wall-clock `running_time`
//!   and the racy shortest-path query counters excepted, as documented on
//!   [`RunMetrics`]).
//! * **Recording.** [`ShardedSimulator::run_recorded`] captures a *global*
//!   trace (released requests in release order, the union fleet sorted by
//!   vehicle id, merged outcomes in shard order).  A sharded run cannot be
//!   replayed through a single `Dispatcher`, so verification re-runs the
//!   whole pipeline and diffs the two traces with
//!   [`diff_traces`](crate::replay::diff_traces).

use crate::config::StructRideConfig;
use crate::context::{DispatchContext, ScratchStats};
use crate::dispatcher::{BatchOutcome, Dispatcher};
use crate::fleet_index::{FleetIndex, REACH_GRACE};
use crate::metrics::RunMetrics;
use crate::replay::{Checkpoint, CheckpointCounters, ShardCheckpoint, TraceRecorder, VehicleState};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;
use structride_model::{insertion, unified_cost, Request, RequestId, Vehicle};
use structride_roadnet::{EpochStore, HubLabels, NodeId, RoadNetwork, SpEngine, SpEngineBuilder};
use structride_spatial::{RegionGrid, RegionId};

/// A dispatcher owned by one shard (must be `Send`: shards dispatch on
/// worker threads).
pub type ShardDispatcher = Box<dyn Dispatcher + Send>;

/// Knobs of the sharding layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardingConfig {
    /// Width of the boundary band, in coordinate units (meters).  A request
    /// whose origin lies within this distance of another region is offered
    /// to that region's shard too; `0.0` disables cross-shard handoff.  The
    /// band also sets the halo width of the per-shard sub-network engines.
    pub handoff_band: f64,
    /// Enables idle-vehicle migration between adjacent shards.
    pub rebalance: bool,
    /// Maximum idle vehicles one shard donates per batch.
    pub max_migrations_per_batch: usize,
    /// Maximum exact insertion bids one candidate shard evaluates per
    /// boundary request (`0` = unlimited).  Candidates are the vehicles that
    /// pass the exact reachability prescreen, ranked by their certified
    /// travel-time lower bound to the pickup; the cap only changes outcomes
    /// when more than `top_m` *feasible-looking* vehicles compete in one
    /// shard, which the default leaves out of reach for every workload in
    /// this repository.
    pub top_m: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig {
            // Roughly one road-network block at the synthetic city spacings
            // (220–300 m).
            handoff_band: 250.0,
            rebalance: true,
            max_migrations_per_batch: 2,
            top_m: 64,
        }
    }
}

impl ShardingConfig {
    /// A configuration with handoff and rebalancing disabled — shards become
    /// fully independent pipelines.
    pub fn isolated() -> Self {
        ShardingConfig {
            handoff_band: 0.0,
            rebalance: false,
            max_migrations_per_batch: 0,
            ..ShardingConfig::default()
        }
    }
}

/// The output of one sharded run.
#[derive(Debug)]
pub struct ShardedReport {
    /// The merged run-level metrics (see [`RunMetrics::merge`]).
    pub aggregate: RunMetrics,
    /// Per-shard metrics, indexed by shard id.
    pub per_shard: Vec<RunMetrics>,
    /// The whole fleet after all schedules executed, sorted by vehicle id.
    pub vehicles: Vec<Vehicle>,
    /// Requests assigned to some vehicle, across all shards.
    pub served: HashSet<RequestId>,
    /// Boundary requests won by a shard other than their home shard.
    pub handoffs: u64,
    /// Feasible insertion bids evaluated while routing boundary requests.
    pub handoff_bids: u64,
    /// Idle vehicles that changed shard ownership for load balancing.
    pub migrations: u64,
    /// Wall-clock of the whole setup — the single shared hub-label build
    /// plus the halo extraction and label slicing of every shard — in
    /// seconds.  One-off cost, amortised over a long run; benchmarks report
    /// it separately from the steady-state batch loop.
    pub setup_seconds: f64,
    /// Wall-clock of the one shared hub-label build alone, seconds.  The
    /// pre-sub-network design paid roughly `shards ×` this (one build per
    /// shard), which is what the bench's `setup_reduction` column reports.
    pub full_build_seconds: f64,
    /// Actual label-index bytes resident for the run: the shared global
    /// index plus every shard's halo slice (summed
    /// [`HubLabels::approx_bytes`], not container capacities).
    pub label_bytes: usize,
    /// Index queries that left a shard's halo and were answered by the
    /// shared global index.  Diagnostic only — like the shortest-path query
    /// counter it is subject to cache-miss races under concurrency.
    pub sp_fallback_queries: u64,
    /// Wall-clock of the batch loop and final drain, seconds.
    pub run_seconds: f64,
    /// Wall-clock spent on the epoch-roll path at traffic epoch boundaries:
    /// memo lookups and prebuild joins for uniform epochs, scoped label
    /// repairs for zoned epochs, and any halo re-cuts — in seconds.  Label
    /// builds finished on the [`EpochStore`]'s background threads before
    /// their epoch arrives are not booked here (they overlap dispatch).
    /// `0.0` for static (free-flow) runs.
    pub label_refresh_seconds: f64,
    /// Number of traffic epoch boundaries crossed during the run (0 for
    /// static runs).
    pub epoch_rolls: u64,
    /// Epoch rolls whose new weights were spatially uniform (Tier 1: the
    /// labels came from the epoch store's signature memo or a background
    /// prebuild — never a roll-path wholesale rebuild).
    pub labels_rescaled: u64,
    /// Epoch rolls whose new weights were zoned (Tier 2: labels produced by
    /// a scoped repair against the same-profile uniform reference).
    pub labels_rebuilt: u64,
    /// Outage windows opened by the deterministic fault injector (see
    /// [`crate::faults`]) — 0 under the inert default config.
    pub faults_injected: u64,
    /// Batches executed in degraded mode (some shard down).
    pub batches_degraded: u64,
    /// Requests routed during degraded batches, including the down shard's
    /// rerouted pending pool — the denominator of
    /// [`ShardedReport::service_rate_degraded`].
    pub degraded_offered: u64,
    /// Requests assigned during degraded batches.
    pub degraded_served: u64,
    /// Total per-shard halo re-cuts across all weight-changing rolls — the
    /// complement of the Tier-3 skip.  `rolls × shards` would mean no shard
    /// ever skipped; lower numbers mean zone activity left some halos
    /// untouched and their clips (and caches) stayed live.
    pub shards_refreshed: u64,
}

impl ShardedReport {
    /// Service rate over the degraded batches alone: assigned / routed while
    /// some shard was down (`0.0` when no batch ran degraded).  The number
    /// the chaos bench row reports — how much service survives an outage.
    pub fn service_rate_degraded(&self) -> f64 {
        if self.degraded_offered == 0 {
            0.0
        } else {
            self.degraded_served as f64 / self.degraded_offered as f64
        }
    }
}

/// One shard: engine + dispatcher + the fleet slice it currently owns.
struct Shard {
    engine: SpEngine,
    dispatcher: ShardDispatcher,
    vehicles: Vec<Vehicle>,
    /// Persistent spatial index over `vehicles` (keyed by slot index):
    /// synced incrementally as the fleet advances and commits, rebuilt only
    /// when migration reorders the slice.  Feeds both the handoff shortlist
    /// and the dispatcher's certified candidate prescreen.
    fleet_index: FleetIndex,
    /// Requests routed to this shard for the current batch (release order).
    inbox: Vec<Request>,
    /// Every request ever routed here, with its direct cost (for the
    /// per-shard unserved penalty), in routing order.
    routed: Vec<(RequestId, f64)>,
    served: HashSet<RequestId>,
    dispatch_time: f64,
    insertion_evaluations: u64,
    groups_enumerated: u64,
    prescreen_pruned: u64,
    /// Outcome of the current batch (drained during merging).
    last_assigned: Vec<RequestId>,
    last_scratch: ScratchStats,
    /// `true` while the fault plan marks this shard down (see
    /// [`crate::faults`]): its fleet is frozen and it neither bids, receives
    /// requests, nor dispatches until recovery.
    down: bool,
    /// Degraded solves by this shard's dispatcher (summed
    /// [`SolverStats::fallbacks`](crate::lap::SolverStats)).
    solver_fallbacks: u64,
}

/// Where the router sent one request.
struct RouteDecision {
    winner: usize,
    home: usize,
    bids: u64,
}

/// Cells per axis of each shard's persistent vehicle-position index (the
/// granularity the pre-persistent per-batch grids used; range queries check
/// exact coordinates, so the cell count only affects constant factors).
const SHARD_GRID_CELLS: u32 = 16;

/// The read-only slice of one shard the router needs — `Sync`, unlike
/// [`Shard`] itself (whose dispatcher is only `Send`), so routing can fan
/// out over worker threads.  Borrows the shard's persistent fleet index for
/// the top-m shortlist instead of rebuilding a position grid per batch.
struct ShardView<'a> {
    engine: &'a SpEngine,
    vehicles: &'a [Vehicle],
    /// The shard's persistent vehicle-position index (slot-index keyed,
    /// synced to `vehicles` before routing).
    index: &'a FleetIndex,
}

impl<'a> ShardView<'a> {
    fn new(shard: &'a Shard) -> Self {
        ShardView {
            engine: &shard.engine,
            vehicles: &shard.vehicles,
            index: &shard.fleet_index,
        }
    }

    /// The top-m candidate shortlist for `request`: every vehicle that could
    /// possibly meet the pickup deadline (exact prescreen — a vehicle whose
    /// `free_at` plus the certified travel-time lower bound to the pickup
    /// already misses the deadline can never produce a feasible insertion),
    /// ranked by that lower bound (ties to the lower fleet index) and capped
    /// at `top_m` entries (`0` = uncapped).  Deterministic: the grid is
    /// filled in fleet order and the ranking is a total order.
    fn shortlist(
        &self,
        network: &RoadNetwork,
        request: &Request,
        top_m: usize,
        min_tpm: f64,
    ) -> Vec<usize> {
        let p = network.coord(request.source);
        let mut candidates: Vec<(f64, usize)> = Vec::new();
        let mut consider = |idx: usize| {
            let vehicle = &self.vehicles[idx];
            let lb = min_tpm * network.coord(vehicle.node).distance(&p);
            if vehicle.free_at + lb <= request.pickup_deadline + REACH_GRACE {
                candidates.push((lb, idx));
            }
        };
        let slack = request.pickup_deadline + REACH_GRACE - self.index.free_floor();
        if min_tpm > 0.0 && slack.is_finite() {
            if slack < 0.0 {
                // Even the earliest-free vehicle standing on the pickup
                // would miss the deadline: nothing can bid.
                return Vec::new();
            }
            self.index
                .for_each_in_range(p.x, p.y, slack / min_tpm, |item| consider(item as usize));
        } else {
            // No certified per-meter rate (or no vehicles): fall back to
            // prescreening the whole fleet slice without a radius.
            (0..self.vehicles.len()).for_each(&mut consider);
        }
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        if top_m > 0 {
            candidates.truncate(top_m);
        }
        candidates.into_iter().map(|(_, idx)| idx).collect()
    }
}

/// The halo vertex sets of every region: vertex `v` belongs to region `r`'s
/// halo when `v` lies in `r` or within `band` of `r`'s rectangle (the same
/// [`RegionGrid::regions_within`] classification that makes a request a
/// boundary request).  Each set is ascending; the union covers every vertex
/// at least once, so the per-shard sub-networks tile the network with
/// band-wide overlaps.
pub fn halo_vertices(network: &RoadNetwork, regions: &RegionGrid, band: f64) -> Vec<Vec<NodeId>> {
    let mut halos: Vec<Vec<NodeId>> = vec![Vec::new(); regions.len()];
    let band = band.max(0.0);
    for v in network.nodes() {
        let p = network.coord(v);
        for r in regions.regions_within(p.x, p.y, band) {
            halos[r as usize].push(v);
        }
    }
    halos
}

/// Applies `f` to every shard, fanning out even for small shard counts
/// (recursive split via [`rayon::join`]; the slice-level `par_iter_mut`
/// falls back to sequential below its chunking threshold).
fn for_each_shard<F: Fn(&mut Shard) + Sync>(shards: &mut [Shard], f: &F) {
    match shards.len() {
        0 => {}
        1 => f(&mut shards[0]),
        n => {
            let (a, b) = shards.split_at_mut(n / 2);
            rayon::join(|| for_each_shard(a, f), || for_each_shard(b, f));
        }
    }
}

/// The no-auction decision: the request stays in its pickup region.
fn home_decision(request: &Request, network: &RoadNetwork, regions: &RegionGrid) -> RouteDecision {
    let p = network.coord(request.source);
    let home = regions.region_of(p.x, p.y) as usize;
    RouteDecision {
        winner: home,
        home,
        bids: 0,
    }
}

/// Routes one request: home region, plus a best-bid auction over every shard
/// the boundary band reaches.  Each candidate shard evaluates exact
/// insertions only over its top-m shortlist (see [`ShardView::shortlist`])
/// instead of its whole fleet.  Pure reads — exact costs, stable tie-breaks
/// — so the decision is independent of the worker count.
///
/// When the fault plan marks a shard `down` it never wins: it is dropped
/// from the auction, and a request *homed* to it fails over through the same
/// bid machinery to the down region's adjacent live shards (lowest-id live
/// neighbour when no bid is feasible).  With `down = None` this is exactly
/// the pre-fault routing rule.
#[allow(clippy::too_many_arguments)]
fn route_request(
    request: &Request,
    network: &RoadNetwork,
    regions: &RegionGrid,
    shards: &[ShardView<'_>],
    band: f64,
    top_m: usize,
    min_tpm: f64,
    down: Option<usize>,
) -> RouteDecision {
    let p = network.coord(request.source);
    let home = regions.region_of(p.x, p.y) as usize;
    let mut candidates: Vec<usize> = if band > 0.0 {
        regions
            .regions_within(p.x, p.y, band)
            .into_iter()
            .map(|c| c as usize)
            .collect()
    } else {
        vec![home]
    };
    if down == Some(home) {
        // Failover: the home shard is dead — its adjacent live shards join
        // the auction even when the request sits deep inside the region.
        for a in regions.adjacent(home as RegionId) {
            let a = a as usize;
            if !candidates.contains(&a) {
                candidates.push(a);
            }
        }
        candidates.sort_unstable();
    }
    if let Some(d) = down {
        candidates.retain(|&c| c != d);
    }
    if down != Some(home) && candidates.len() <= 1 {
        return RouteDecision {
            winner: home,
            home,
            bids: 0,
        };
    }
    let mut bids = 0u64;
    // Strictly-lower cost wins; candidates ascend, so ties keep the lowest
    // shard id.
    let mut best: Option<(f64, usize)> = None;
    for &c in &candidates {
        let shard = &shards[c];
        for idx in shard.shortlist(network, request, top_m, min_tpm) {
            let vehicle = &shard.vehicles[idx];
            if let Some(out) = insertion::insert_request(shard.engine, vehicle, request) {
                bids += 1;
                if best.map(|(cost, _)| out.added_cost < cost).unwrap_or(true) {
                    best = Some((out.added_cost, c));
                }
            }
        }
    }
    // No feasible bid keeps the request home — unless home is the down
    // shard, where the lowest-id live neighbour holds it instead (it waits
    // in that shard's pool and is stranded only if no later batch serves
    // it: exact accounting either way).
    let fallback = if down == Some(home) {
        candidates.first().copied().unwrap_or(home)
    } else {
        home
    };
    RouteDecision {
        winner: best.map(|(_, c)| c).unwrap_or(fallback),
        home,
        bids,
    }
}

/// Moves idle vehicles from relaxed shards to overloaded adjacent shards.
///
/// Deterministic rule, evaluated in ascending shard order against the
/// pending counts captured *before* any move: a shard with zero pending
/// requests donates its lowest-id idle vehicles (up to `max_moves`) to each
/// adjacent shard holding more pending requests than vehicles.  Donated
/// vehicles append to the receiving fleet, keeping both fleets' orders
/// deterministic.  A `down` shard neither donates nor receives: its fleet is
/// frozen for the outage.
fn rebalance(
    shards: &mut [Shard],
    regions: &RegionGrid,
    max_moves: usize,
    down: Option<usize>,
) -> u64 {
    let pending: Vec<usize> = shards
        .iter()
        .map(|s| s.dispatcher.pending_requests())
        .collect();
    let mut moved_total = 0u64;
    for donor in 0..shards.len() {
        if pending[donor] > 0 || down == Some(donor) {
            continue;
        }
        let mut budget = max_moves;
        'targets: for t in regions.adjacent(donor as RegionId) {
            let t = t as usize;
            if down == Some(t) {
                continue;
            }
            while budget > 0 && pending[t] > shards[t].vehicles.len() {
                let Some(pos) = shards[donor]
                    .vehicles
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_idle())
                    .min_by_key(|(_, v)| v.id)
                    .map(|(i, _)| i)
                else {
                    break 'targets;
                };
                let vehicle = shards[donor].vehicles.remove(pos);
                shards[t].vehicles.push(vehicle);
                budget -= 1;
                moved_total += 1;
            }
        }
    }
    moved_total
}

/// The union fleet, cloned and sorted by vehicle id — the canonical global
/// view recorded into sharded traces.
fn fleet_snapshot(shards: &[Shard]) -> Vec<Vehicle> {
    let mut all: Vec<Vehicle> = shards
        .iter()
        .flat_map(|s| s.vehicles.iter().cloned())
        .collect();
    all.sort_by_key(|v| v.id);
    all
}

/// A vertical-strip region layout covering `network`'s bounding box with
/// `shards` regions — the default layout for side-by-side city workloads.
/// Delegates to [`RegionGrid::strips_covering`], the same constructor the
/// multi-region workload generator uses, so a workload and the simulator
/// sharding it always agree on the strip layout.
pub fn region_strips_for(network: &RoadNetwork, shards: u32) -> RegionGrid {
    RegionGrid::strips_covering(network.bounding_box(), shards)
}

/// A `rows × cols` region layout covering `network`'s bounding box — the
/// general form of [`region_strips_for`] for two-dimensional shard layouts
/// (e.g. the 2×3 six-region bench row).
pub fn region_grid_for(network: &RoadNetwork, rows: u32, cols: u32) -> RegionGrid {
    RegionGrid::covering(network.bounding_box(), rows, cols)
}

/// The in-flight state of one sharded run: the shards plus every cross-batch
/// counter, with the per-batch pipeline body factored into
/// [`ShardedRun::step`] so the three drive modes — clock-driven
/// ([`ShardedSimulator::run`]), fed from recorded boundaries
/// ([`ShardedSimulator::run_fed_recorded`]) and ingested
/// ([`ShardedSimulator::run_ingested`](crate::ingest)) — execute the
/// *identical* routing/dispatch/merge/rebalance sequence.  That sharing is
/// what makes a recorded ingested run re-runnable: determinism holds per
/// step, whatever produced the batch boundaries.
pub(crate) struct ShardedRun<'a> {
    config: StructRideConfig,
    sharding: ShardingConfig,
    network: &'a RoadNetwork,
    regions: &'a RegionGrid,
    shards: Vec<Shard>,
    served: HashSet<RequestId>,
    batches: usize,
    now: f64,
    handoffs: u64,
    handoff_bids: u64,
    migrations: u64,
    setup_seconds: f64,
    full_build_seconds: f64,
    /// Shared global index + per-shard halo slices, bytes.
    label_bytes: usize,
    /// The *current epoch's* certified seconds-per-meter floor (0 = no
    /// bound).  Re-pinned from the epoch artifacts at every roll so the
    /// top-m shortlist and the per-shard fleet-index prescreens stay sound
    /// under congestion.
    min_tpm: f64,
    /// The shared tiered epoch-roll repair engine all shard engines roll
    /// through (`None` for static configs).
    store: Option<Arc<EpochStore>>,
    /// Traffic epoch currently loaded into the shard engines.
    current_epoch: u64,
    epoch_rolls: u64,
    labels_rescaled: u64,
    labels_rebuilt: u64,
    label_refresh_seconds: f64,
    faults_injected: u64,
    batches_degraded: u64,
    degraded_offered: u64,
    degraded_served: u64,
    run_t0: Instant,
}

impl<'a> ShardedRun<'a> {
    /// Builds the shards and homes each vehicle to the shard of its starting
    /// node, preserving input order within each shard.
    ///
    /// Setup builds the global hub-label index **once** (in parallel) and
    /// shares it — together with a single `Arc`'d copy of the network —
    /// across all shards; each shard then extracts its halo sub-network and
    /// slices the shared labels down to it.  This replaces the pre-PR-5
    /// per-shard whole-network clone + from-scratch label build, whose cost
    /// scaled as `k×|V|`.
    pub(crate) fn new(
        sim: &ShardedSimulator,
        network: &'a RoadNetwork,
        regions: &'a RegionGrid,
        vehicles: Vec<Vehicle>,
        make_dispatcher: &dyn Fn(usize) -> ShardDispatcher,
    ) -> Self {
        let setup_t0 = Instant::now();
        let shared_net = Arc::new(network.clone());
        let traffic = sim.config().traffic;
        let epoch0 = traffic.epoch_at(0.0);
        let halos = halo_vertices(network, regions, sim.sharding().handoff_band);
        // Static configs keep the pre-traffic fast path: one shared label
        // build, static clipped engines, no epoch store.  Traffic configs
        // build the shared EpochStore (its initial-epoch label build is the
        // timed full build — bit-identical to the static path when epoch 0
        // is free flow) and per-shard *self-rolling* clipped engines over
        // it, so every later epoch boundary is handled inside
        // `SpEngine::roll_epoch_to` instead of by an external rebuild.
        let (store, full_build_seconds, engines, min_tpm, full_label_bytes);
        if traffic.is_static() {
            let full_t0 = Instant::now();
            let full_labels = Arc::new(HubLabels::build(&shared_net));
            full_build_seconds = full_t0.elapsed().as_secs_f64();
            // Clipped engines are independent per shard: extract + slice in
            // parallel, collected in shard order (deterministic).
            engines = halos
                .par_iter()
                .map(|halo| {
                    SpEngineBuilder::new()
                        .epoch_tag(epoch0.index)
                        .build_clipped(shared_net.clone(), full_labels.clone(), halo)
                })
                .collect::<Vec<SpEngine>>();
            min_tpm = shared_net.min_time_per_meter();
            full_label_bytes = full_labels.approx_bytes();
            store = None;
        } else {
            let full_t0 = Instant::now();
            let epoch_store = EpochStore::new(shared_net.clone(), traffic, true);
            full_build_seconds = full_t0.elapsed().as_secs_f64();
            engines = halos
                .par_iter()
                .map(|halo| SpEngineBuilder::new().build_traffic_clipped(epoch_store.clone(), halo))
                .collect::<Vec<SpEngine>>();
            let initial = epoch_store.initial_artifacts();
            min_tpm = initial.min_tpm();
            full_label_bytes = initial.labels().map(|l| l.approx_bytes()).unwrap_or(0);
            store = Some(epoch_store);
        }
        let label_bytes = full_label_bytes
            + engines
                .iter()
                .map(|e| if e.is_clipped() { e.index_bytes() } else { 0 })
                .sum::<usize>();
        // Padded the same way the region constructors pad, so the shortlist
        // grid is always valid and lines up with the region layout.
        let grid_bbox = RegionGrid::padded_bbox(network.bounding_box());
        let mut shards: Vec<Shard> = engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| Shard {
                engine,
                dispatcher: make_dispatcher(i),
                vehicles: Vec::new(),
                fleet_index: FleetIndex::build(grid_bbox, SHARD_GRID_CELLS, network, &[]),
                inbox: Vec::new(),
                routed: Vec::new(),
                served: HashSet::new(),
                dispatch_time: 0.0,
                insertion_evaluations: 0,
                groups_enumerated: 0,
                prescreen_pruned: 0,
                last_assigned: Vec::new(),
                last_scratch: ScratchStats::default(),
                down: false,
                solver_fallbacks: 0,
            })
            .collect();
        let setup_seconds = setup_t0.elapsed().as_secs_f64();
        for vehicle in vehicles {
            let p = network.coord(vehicle.node);
            let home = regions.region_of(p.x, p.y) as usize;
            shards[home].vehicles.push(vehicle);
        }
        for shard in &mut shards {
            shard.fleet_index.rebuild(network, &shard.vehicles);
            shard.fleet_index.set_min_time_per_meter(min_tpm);
        }
        // Kick the background label prebuild only now — after setup_seconds
        // is measured — so the builder threads overlap the batch loop
        // instead of contending with the halo extraction above.
        if let Some(store) = &store {
            store.ensure_prebuild();
        }
        ShardedRun {
            config: *sim.config(),
            sharding: *sim.sharding(),
            network,
            regions,
            shards,
            served: HashSet::new(),
            batches: 0,
            now: 0.0,
            handoffs: 0,
            handoff_bids: 0,
            migrations: 0,
            setup_seconds,
            full_build_seconds,
            label_bytes,
            min_tpm,
            store,
            current_epoch: epoch0.index,
            epoch_rolls: 0,
            labels_rescaled: 0,
            labels_rebuilt: 0,
            label_refresh_seconds: 0.0,
            faults_injected: 0,
            batches_degraded: 0,
            degraded_offered: 0,
            degraded_served: 0,
            run_t0: Instant::now(),
        }
    }

    /// Rolls every shard engine to the traffic epoch containing `now`
    /// through the shared [`EpochStore`]: the first engine to ask for the
    /// new signature fetches it (memo hit, background-prebuild join, or
    /// on-demand scoped repair), every other shard gets the memoized
    /// artifacts for free, and clipped engines whose halo the transition
    /// provably did not touch skip their re-cut entirely (Tier 3) — their
    /// slices and caches stay live across the roll.  Every shard's
    /// fleet-index prescreen rate is re-pinned from the epoch artifacts so
    /// prescreens stay sound under congestion.  No-op for static configs
    /// and within an epoch.
    ///
    /// Engines persist across rolls, so their diagnostic query counters
    /// simply keep accumulating (they are excluded from replay comparisons
    /// but still reported).
    fn roll_epoch_to(&mut self, now: f64) {
        if self.config.traffic.is_static() {
            return;
        }
        let epoch = self.config.traffic.epoch_at(now);
        if epoch.index == self.current_epoch {
            return;
        }
        let t0 = Instant::now();
        for_each_shard(&mut self.shards, &|s| {
            if s.engine.roll_epoch_to(now) {
                s.fleet_index
                    .set_min_time_per_meter(s.engine.min_time_per_meter());
            }
        });
        if let Some(store) = &self.store {
            // Memo hit: every shard engine just rolled to this signature.
            self.min_tpm = store.artifacts_for(&epoch).min_tpm();
        }
        if epoch.uniform_multiplier().is_some() {
            self.labels_rescaled += 1;
        } else {
            self.labels_rebuilt += 1;
        }
        self.current_epoch = epoch.index;
        self.epoch_rolls += 1;
        self.label_refresh_seconds += t0.elapsed().as_secs_f64();
    }

    /// Number of batches stepped so far.
    pub(crate) fn batches(&self) -> usize {
        self.batches
    }

    /// Requests currently held across all shard dispatchers.
    pub(crate) fn pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.dispatcher.pending_requests())
            .sum()
    }

    /// Executes one batch at simulated time `now`: advance every shard's
    /// fleet to the shared clock, route the batch (home region or best-bid
    /// handoff), dispatch every shard's sub-batch in parallel, merge the
    /// outcomes in ascending shard order, and rebalance idle vehicles.
    /// Returns the request ids committed this batch, in shard-merge order.
    pub(crate) fn step(
        &mut self,
        now: f64,
        batch: &[Request],
        recorder: &mut Option<&mut TraceRecorder>,
    ) -> Vec<RequestId> {
        // Roll the traffic epoch *before* the advance sweep so the whole
        // batch — vehicle movement, routing bids, dispatch — sees one epoch
        // (mirrors the monolithic simulator's ordering).  Down shards roll
        // too: an outage kills the dispatcher, not the map.
        self.roll_epoch_to(now);
        self.now = now;
        // The batch's fault plan: pure in (config, batch index, shard
        // count), so a replay or a resumed checkpoint derives the identical
        // schedule (see `crate::faults`).
        let plan = self.config.faults.plan_at(self.batches, self.shards.len());
        let prev_down = (self.batches > 0)
            .then(|| {
                self.config
                    .faults
                    .plan_at(self.batches - 1, self.shards.len())
                    .down_shard
            })
            .flatten();
        let down = plan.down_shard;
        for (i, s) in self.shards.iter_mut().enumerate() {
            s.down = down == Some(i);
        }
        let network = self.network;
        for_each_shard(&mut self.shards, &|s| {
            // A down shard's fleet is frozen — `advance_to` is a pure
            // fast-forward of committed schedules, so the recovery batch
            // catches it up deterministically.
            if s.down {
                return;
            }
            s.vehicles.par_iter_mut().for_each(|v| {
                v.advance_to(&s.engine, now);
            });
            s.fleet_index.sync(network, &s.vehicles);
        });
        // Recovery boundary: the shard that was down last batch just
        // fast-forwarded across the whole outage in the sweep above —
        // rebuild its fleet index from scratch and re-admit the region (the
        // routing below includes it again).
        if let Some(r) = prev_down {
            if down != Some(r) {
                let s = &mut self.shards[r];
                s.fleet_index.rebuild(network, &s.vehicles);
            }
        }
        if let Some(rec) = recorder.as_deref_mut() {
            rec.batch_started(self.batches, now, batch, &fleet_snapshot(&self.shards));
        }

        // Outage injection: the moment a shard goes down, its carried-over
        // pending pool is drained and rerouted below through the same
        // handoff-bid auction as boundary requests.  The drained requests
        // leave the victim's penalty ledger and re-enter the winner's, so
        // served/stranded accounting stays exact.
        let mut orphaned: Vec<Request> = Vec::new();
        if plan.outage_starts {
            self.faults_injected += 1;
            let victim = down.expect("outage_starts implies a down shard");
            orphaned = self.shards[victim].dispatcher.take_pending();
            if !orphaned.is_empty() {
                let ids: HashSet<RequestId> = orphaned.iter().map(|r| r.id).collect();
                self.shards[victim]
                    .routed
                    .retain(|(id, _)| !ids.contains(id));
            }
        }
        if down.is_some() {
            self.batches_degraded += 1;
            self.degraded_offered += (orphaned.len() + batch.len()) as u64;
        }

        // Route the batch: home region or best-bid handoff.  Pure reads
        // over the pre-dispatch shard states; order-preserving collect.
        // The per-shard position grids behind the top-m shortlist are only
        // worth building when an auction can actually happen — i.e. the
        // batch holds at least one boundary request (interior requests
        // route home with zero bids either way).
        let band = self.sharding.handoff_band;
        let has_boundary_request = band > 0.0
            && batch.iter().any(|r| {
                let p = self.network.coord(r.source);
                self.regions.is_boundary(p.x, p.y, band)
            });
        let mut orphan_decisions: Vec<RouteDecision> = Vec::new();
        let decisions: Vec<RouteDecision> = if has_boundary_request || down.is_some() {
            let views: Vec<ShardView<'_>> = self.shards.iter().map(ShardView::new).collect();
            let views = &views;
            let top_m = self.sharding.top_m;
            let min_tpm = self.min_tpm;
            let network = self.network;
            let regions = self.regions;
            // The dead shard's drained pool fails over through the same
            // auction, ahead of the batch's own requests (they were released
            // earlier).
            orphan_decisions = orphaned
                .par_iter()
                .map(|r| route_request(r, network, regions, views, band, top_m, min_tpm, down))
                .collect();
            batch
                .par_iter()
                .map(|r| route_request(r, network, regions, views, band, top_m, min_tpm, down))
                .collect()
        } else {
            batch
                .iter()
                .map(|r| home_decision(r, self.network, self.regions))
                .collect()
        };
        let routed = orphaned
            .iter()
            .zip(&orphan_decisions)
            .chain(batch.iter().zip(&decisions));
        for (request, decision) in routed {
            if decision.winner != decision.home {
                self.handoffs += 1;
            }
            self.handoff_bids += decision.bids;
            let shard = &mut self.shards[decision.winner];
            shard.routed.push((request.id, request.direct_cost()));
            shard.inbox.push(request.clone());
        }

        // Dispatch every shard's sub-batch in parallel.
        let config = self.config;
        let batch_index = self.batches;
        for_each_shard(&mut self.shards, &|s| {
            if s.down {
                // The dead shard neither received requests nor dispatches;
                // its previous batch's outcome must not leak into this
                // batch's merge.
                debug_assert!(s.inbox.is_empty(), "no requests route to a down shard");
                s.last_assigned = Vec::new();
                s.last_scratch = ScratchStats::default();
                return;
            }
            let inbox = std::mem::take(&mut s.inbox);
            // Scoped so the context's borrow of the fleet index ends before
            // the post-dispatch resync below.
            let (outcome, scratch) = {
                let ctx = DispatchContext::for_batch(&s.engine, config, now, batch_index)
                    .with_fleet_index(&s.fleet_index);
                let t0 = Instant::now();
                let outcome = s.dispatcher.dispatch_batch(&ctx, &mut s.vehicles, &inbox);
                s.dispatch_time += t0.elapsed().as_secs_f64();
                (outcome, ctx.scratch.snapshot())
            };
            // Commits moved `free_at` forward; resync (positions unchanged)
            // so the next routing pass sees a consistent index.
            s.fleet_index.sync(network, &s.vehicles);
            #[cfg(debug_assertions)]
            s.fleet_index.check_consistency(network, &s.vehicles);
            s.insertion_evaluations += scratch.insertion_evaluations;
            s.groups_enumerated += scratch.groups_enumerated;
            s.prescreen_pruned += scratch.prescreen_pruned;
            s.solver_fallbacks += outcome.solver.map_or(0, |st| st.fallbacks);
            s.last_scratch = scratch;
            s.last_assigned = outcome.assigned;
        });

        // Merge per-shard outcomes in ascending shard order (canonical).
        let mut merged = BatchOutcome::empty();
        let mut merged_scratch = ScratchStats::default();
        for s in self.shards.iter_mut() {
            self.served.extend(s.last_assigned.iter().copied());
            s.served.extend(s.last_assigned.iter().copied());
            merged_scratch.insertion_evaluations += s.last_scratch.insertion_evaluations;
            merged_scratch.groups_enumerated += s.last_scratch.groups_enumerated;
            merged_scratch.prescreen_pruned += s.last_scratch.prescreen_pruned;
            merged.assigned.append(&mut s.last_assigned);
        }
        if down.is_some() {
            self.degraded_served += merged.assigned.len() as u64;
        }
        self.batches += 1;
        if let Some(rec) = recorder.as_deref_mut() {
            rec.batch_finished(&merged, &fleet_snapshot(&self.shards), merged_scratch);
        }

        if self.sharding.rebalance && self.shards.len() > 1 {
            let moved = rebalance(
                &mut self.shards,
                self.regions,
                self.sharding.max_migrations_per_batch,
                down,
            );
            if moved > 0 {
                // Migration removes/appends across fleet slices, shifting
                // the slot indexes the grids are keyed by: rebuild.
                for s in self.shards.iter_mut() {
                    s.fleet_index.rebuild(network, &s.vehicles);
                }
            }
            self.migrations += moved;
        }
        merged.assigned
    }

    /// Snapshots the full mutable run state at a batch boundary — a pure
    /// read (non-destructive dispatcher snapshots, cloned ledgers), so a
    /// checkpointing run steps bit-identically to a non-checkpointing one.
    /// Wall-clock diagnostics (dispatch/setup/label-refresh seconds,
    /// shortest-path query counters) are deliberately not captured; resumed
    /// runs re-accumulate them from zero, exactly as replay comparisons
    /// exclude them.
    pub(crate) fn capture(&self, workload_name: &str, next_request: usize) -> Checkpoint {
        let mut served: Vec<RequestId> = self.served.iter().copied().collect();
        served.sort_unstable();
        Checkpoint {
            algorithm: self.shards[0].dispatcher.name().to_string(),
            workload: workload_name.to_string(),
            config: self.config,
            sharded: true,
            now: self.now,
            batches: self.batches,
            next_request,
            served,
            counters: CheckpointCounters {
                handoffs: self.handoffs,
                handoff_bids: self.handoff_bids,
                migrations: self.migrations,
                epoch_rolls: self.epoch_rolls,
                labels_rescaled: self.labels_rescaled,
                labels_rebuilt: self.labels_rebuilt,
                faults_injected: self.faults_injected,
                batches_degraded: self.batches_degraded,
                degraded_offered: self.degraded_offered,
                degraded_served: self.degraded_served,
            },
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let mut shard_served: Vec<RequestId> = s.served.iter().copied().collect();
                    shard_served.sort_unstable();
                    ShardCheckpoint {
                        insertion_evaluations: s.insertion_evaluations,
                        groups_enumerated: s.groups_enumerated,
                        prescreen_pruned: s.prescreen_pruned,
                        solver_fallbacks: s.solver_fallbacks,
                        routed: s.routed.clone(),
                        served: shard_served,
                        fleet: s.vehicles.iter().map(VehicleState::capture).collect(),
                        pending: s.dispatcher.checkpoint_pending(),
                    }
                })
                .collect(),
        }
    }

    /// Reinstates a captured state into a freshly built run (same network,
    /// regions and shard count).  Fleets are restored in slot order (slot
    /// order is load-bearing after migrations), dispatcher pools and edges
    /// verbatim, and every shard engine is rolled to the checkpoint's
    /// traffic epoch — a pure function of (config, batch clock), so one
    /// direct roll lands exactly where the original run's incremental rolls
    /// did.
    pub(crate) fn restore(&mut self, ckpt: &Checkpoint) {
        assert!(
            ckpt.sharded,
            "a monolithic checkpoint resumes through Simulator::resume"
        );
        assert_eq!(
            ckpt.shards.len(),
            self.shards.len(),
            "checkpoint shard count must match the region layout"
        );
        self.served = ckpt.served.iter().copied().collect();
        self.batches = ckpt.batches;
        self.now = ckpt.now;
        let c = &ckpt.counters;
        self.handoffs = c.handoffs;
        self.handoff_bids = c.handoff_bids;
        self.migrations = c.migrations;
        self.faults_injected = c.faults_injected;
        self.batches_degraded = c.batches_degraded;
        self.degraded_offered = c.degraded_offered;
        self.degraded_served = c.degraded_served;
        for (shard, s) in self.shards.iter_mut().zip(&ckpt.shards) {
            shard.vehicles = s.fleet.iter().map(VehicleState::restore).collect();
            shard.routed = s.routed.clone();
            shard.served = s.served.iter().copied().collect();
            shard.insertion_evaluations = s.insertion_evaluations;
            shard.groups_enumerated = s.groups_enumerated;
            shard.prescreen_pruned = s.prescreen_pruned;
            shard.solver_fallbacks = s.solver_fallbacks;
            shard.dispatcher.restore_snapshot(s.pending.clone());
        }
        // Prime the traffic epoch, then pin the roll telemetry to the
        // checkpointed totals (the one direct roll above would otherwise
        // count as a single transition).
        self.roll_epoch_to(ckpt.now);
        self.epoch_rolls = c.epoch_rolls;
        self.labels_rescaled = c.labels_rescaled;
        self.labels_rebuilt = c.labels_rebuilt;
        // The restored fleets replaced the slices wholesale: rebuild every
        // slot-keyed index and re-pin its certified prescreen rate, exactly
        // as the migration path does.
        let network = self.network;
        let is_static = self.config.traffic.is_static();
        let min_tpm = self.min_tpm;
        for s in self.shards.iter_mut() {
            s.fleet_index.rebuild(network, &s.vehicles);
            s.fleet_index.set_min_time_per_meter(if is_static {
                min_tpm
            } else {
                s.engine.min_time_per_meter()
            });
        }
    }

    /// Drains every committed schedule and assembles the report.
    pub(crate) fn finish(mut self, workload_name: &str, horizon_end: f64) -> ShardedReport {
        let drain_until = self.now + horizon_end + 1.0e6;
        for_each_shard(&mut self.shards, &|s| {
            s.vehicles.par_iter_mut().for_each(|v| {
                v.advance_to(&s.engine, drain_until);
            });
        });

        let batches = self.batches;
        let per_shard: Vec<RunMetrics> = self
            .shards
            .iter()
            .map(|s| {
                let total_travel: f64 = s.vehicles.iter().map(|v| v.executed_travel).sum();
                let unserved_direct_cost: f64 = s
                    .routed
                    .iter()
                    .filter(|(id, _)| !s.served.contains(id))
                    .map(|(_, cost)| cost)
                    .sum();
                RunMetrics {
                    algorithm: s.dispatcher.name().to_string(),
                    workload: workload_name.to_string(),
                    total_requests: s.routed.len(),
                    served_requests: s.served.len(),
                    total_travel,
                    unserved_direct_cost,
                    unified_cost: unified_cost(
                        &self.config.cost,
                        total_travel,
                        unserved_direct_cost,
                    ),
                    running_time: s.dispatch_time,
                    sp_queries: s.engine.stats().index_queries,
                    // Actual label bytes of the shard's own index (the halo
                    // slice; the whole index for a single covering shard) —
                    // not a container-capacity estimate.
                    memory_bytes: s.engine.index_bytes(),
                    batches,
                    insertion_evaluations: s.insertion_evaluations,
                    groups_enumerated: s.groups_enumerated,
                    prescreen_pruned: s.prescreen_pruned,
                    solver_fallbacks: s.solver_fallbacks,
                }
            })
            .collect();
        let aggregate =
            RunMetrics::merge_all(&per_shard, &self.config.cost).expect("at least one shard");
        let sp_fallback_queries = self
            .shards
            .iter()
            .map(|s| s.engine.fallback_queries())
            .sum();
        let vehicles = fleet_snapshot(&self.shards);
        let served = std::mem::take(&mut self.served);
        ShardedReport {
            aggregate,
            per_shard,
            vehicles,
            served,
            handoffs: self.handoffs,
            handoff_bids: self.handoff_bids,
            migrations: self.migrations,
            setup_seconds: self.setup_seconds,
            full_build_seconds: self.full_build_seconds,
            label_bytes: self.label_bytes,
            sp_fallback_queries,
            run_seconds: self.run_t0.elapsed().as_secs_f64(),
            label_refresh_seconds: self.label_refresh_seconds,
            epoch_rolls: self.epoch_rolls,
            labels_rescaled: self.labels_rescaled,
            labels_rebuilt: self.labels_rebuilt,
            faults_injected: self.faults_injected,
            batches_degraded: self.batches_degraded,
            degraded_offered: self.degraded_offered,
            degraded_served: self.degraded_served,
            shards_refreshed: self.shards.iter().map(|s| s.engine.slice_refreshes()).sum(),
        }
    }
}

/// The batch-synchronous multi-shard simulation driver.  See the module docs
/// for the handoff and determinism invariants.
pub struct ShardedSimulator {
    config: StructRideConfig,
    sharding: ShardingConfig,
}

impl ShardedSimulator {
    /// Creates a sharded simulator with the default [`ShardingConfig`].
    pub fn new(config: StructRideConfig) -> Self {
        Self::with_sharding(config, ShardingConfig::default())
    }

    /// Creates a sharded simulator with explicit sharding knobs.
    pub fn with_sharding(config: StructRideConfig, sharding: ShardingConfig) -> Self {
        ShardedSimulator { config, sharding }
    }

    /// The framework configuration every shard runs with.
    pub fn config(&self) -> &StructRideConfig {
        &self.config
    }

    /// The sharding knobs.
    pub fn sharding(&self) -> &ShardingConfig {
        &self.sharding
    }

    /// Runs one dispatcher per region of `regions` over the partitioned
    /// fleet and request stream.
    ///
    /// `make_dispatcher(shard_id)` constructs each shard's dispatcher —
    /// typically `|_| Box::new(SardDispatcher::new(config))`.  Every shard
    /// gets its own halo-clipped [`SpEngine`] (independent shortest-path
    /// cache, compact label slice) over the `Arc`-shared global network and
    /// index, so `network` is the *whole* road network: shards partition the
    /// fleet and the demand, not the map.
    pub fn run<F>(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        make_dispatcher: F,
        workload_name: &str,
    ) -> ShardedReport
    where
        F: Fn(usize) -> ShardDispatcher,
    {
        self.run_impl(
            network,
            regions,
            requests,
            vehicles,
            &make_dispatcher,
            workload_name,
            None,
            None,
            None,
        )
    }

    /// Like [`ShardedSimulator::run`], but hands a [`Checkpoint`] to `sink`
    /// at every batch boundary the fault plan's checkpoint cadence marks
    /// (see [`FaultConfig::checkpoint_every`](crate::faults::FaultConfig)).
    /// Capture is a pure read, so a checkpointing run finishes
    /// bit-identically to a non-checkpointing one.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_checkpoints<F>(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        make_dispatcher: F,
        workload_name: &str,
        sink: &mut dyn FnMut(Checkpoint),
    ) -> ShardedReport
    where
        F: Fn(usize) -> ShardDispatcher,
    {
        self.run_impl(
            network,
            regions,
            requests,
            vehicles,
            &make_dispatcher,
            workload_name,
            None,
            Some(sink),
            None,
        )
    }

    /// Continues a sharded run from `checkpoint` and finishes it
    /// bit-identically to the uninterrupted run (aggregate and per-shard
    /// deterministic metrics, served set, final fleet; wall-clock
    /// diagnostics re-accumulate from zero).  `network`, `regions`,
    /// `requests` and `make_dispatcher` must match the original run — the
    /// checkpoint carries the fleets and pools, not the map or the future
    /// request stream.
    pub fn resume<F>(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        requests: &[Request],
        make_dispatcher: F,
        checkpoint: &Checkpoint,
    ) -> ShardedReport
    where
        F: Fn(usize) -> ShardDispatcher,
    {
        self.run_impl(
            network,
            regions,
            requests,
            Vec::new(),
            &make_dispatcher,
            &checkpoint.workload.clone(),
            None,
            None,
            Some(checkpoint),
        )
    }

    /// Like [`ShardedSimulator::run`], but records the canonical global
    /// trace (release-ordered batches, id-sorted union fleet, shard-ordered
    /// merged outcomes) into `recorder` for
    /// [`diff_traces`](crate::replay::diff_traces)-based verification.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recorded<F>(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        make_dispatcher: F,
        workload_name: &str,
        recorder: &mut TraceRecorder,
    ) -> ShardedReport
    where
        F: Fn(usize) -> ShardDispatcher,
    {
        self.run_impl(
            network,
            regions,
            requests,
            vehicles,
            &make_dispatcher,
            workload_name,
            Some(recorder),
            None,
            None,
        )
    }

    /// Like [`ShardedSimulator::run_recorded`], but also hands a
    /// [`Checkpoint`] to `sink` at every boundary the fault plan's cadence
    /// marks — the replay CLI's record flow, which needs the reference trace
    /// and a mid-run checkpoint from a single run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recorded_with_checkpoints<F>(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        make_dispatcher: F,
        workload_name: &str,
        recorder: &mut TraceRecorder,
        sink: &mut dyn FnMut(Checkpoint),
    ) -> ShardedReport
    where
        F: Fn(usize) -> ShardDispatcher,
    {
        self.run_impl(
            network,
            regions,
            requests,
            vehicles,
            &make_dispatcher,
            workload_name,
            Some(recorder),
            Some(sink),
            None,
        )
    }

    /// Re-runs the pipeline from *explicit* batch boundaries — each entry is
    /// `(now, released requests)` — recording the canonical global trace.
    ///
    /// This is the verification path for **ingested** sharded runs (see
    /// [`crate::ingest`]): realized wall-clock boundaries are not
    /// reproducible, but given the recorded boundaries the pipeline is
    /// deterministic, so re-running from them under a different worker count
    /// and diffing the traces ([`diff_traces`](crate::replay::diff_traces))
    /// enforces the replay invariant.  No early exit and no carried-over
    /// tail: exactly the fed batches are stepped.
    #[allow(clippy::too_many_arguments)]
    pub fn run_fed_recorded<F>(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        batches: &[(f64, Vec<Request>)],
        vehicles: Vec<Vehicle>,
        make_dispatcher: F,
        workload_name: &str,
        recorder: &mut TraceRecorder,
    ) -> ShardedReport
    where
        F: Fn(usize) -> ShardDispatcher,
    {
        let mut run = ShardedRun::new(self, network, regions, vehicles, &make_dispatcher);
        let mut rec = Some(recorder);
        let mut horizon_end = 0.0_f64;
        for (now, batch) in batches {
            horizon_end = batch
                .iter()
                .map(|r| r.pickup_deadline)
                .fold(horizon_end, f64::max);
            run.step(*now, batch, &mut rec);
        }
        run.finish(workload_name, horizon_end)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_impl(
        &self,
        network: &RoadNetwork,
        regions: &RegionGrid,
        requests: &[Request],
        vehicles: Vec<Vehicle>,
        make_dispatcher: &dyn Fn(usize) -> ShardDispatcher,
        workload_name: &str,
        mut recorder: Option<&mut TraceRecorder>,
        mut sink: Option<&mut dyn FnMut(Checkpoint)>,
        resume_from: Option<&Checkpoint>,
    ) -> ShardedReport {
        let mut run = ShardedRun::new(self, network, regions, vehicles, make_dispatcher);

        let mut ordered: Vec<Request> = requests.to_vec();
        ordered.sort_by(|a, b| {
            a.release
                .partial_cmp(&b.release)
                .expect("finite release times")
        });
        let delta = self.config.batch_period.max(1e-3);
        let horizon_end = ordered
            .iter()
            .map(|r| r.pickup_deadline)
            .fold(0.0_f64, f64::max);

        let mut next = 0usize;
        let mut now = 0.0;
        if let Some(ckpt) = resume_from {
            run.restore(ckpt);
            next = ckpt.next_request;
            now = ckpt.now;
        }
        while next < ordered.len() || now < horizon_end {
            now += delta;
            let start = next;
            while next < ordered.len() && ordered[next].release <= now {
                next += 1;
            }
            run.step(now, &ordered[start..next], &mut recorder);

            // Same early exit as the monolithic simulator: stream drained
            // and no shard holds a carried-over request.
            if next == ordered.len() && run.pending() == 0 {
                break;
            }
            // Checkpoint boundary — placed after the early exit (a finished
            // run never writes one), asking whether a checkpoint is due
            // before dispatching the *next* batch.  The cadence flag is
            // shard-count independent (see `FaultPlan::checkpoint`).
            if self.config.faults.plan_at(run.batches(), 1).checkpoint {
                if let Some(sink) = sink.as_deref_mut() {
                    sink(run.capture(workload_name, next));
                }
            }
            if run.batches() > 10_000_000 {
                break;
            }
        }

        run.finish(workload_name, horizon_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    fn two_cluster_network() -> RoadNetwork {
        // Two 3-node clusters 1000 m apart, bridged by one slow edge.
        let mut b = RoadNetworkBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i as f64 * 50.0, 0.0));
        }
        for i in 0..3 {
            b.add_node(Point::new(1000.0 + i as f64 * 50.0, 0.0));
        }
        for i in 1..3u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
            b.add_bidirectional(3 + i - 1, 3 + i, 10.0).unwrap();
        }
        b.add_bidirectional(2, 3, 200.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn region_strips_cover_the_network() {
        let net = two_cluster_network();
        let grid = region_strips_for(&net, 2);
        assert_eq!(grid.len(), 2);
        // The west cluster's nodes are in region 0, the east one's in 1.
        for v in [0u32, 1, 2] {
            let p = net.coord(v);
            assert_eq!(grid.region_of(p.x, p.y), 0);
        }
        for v in [3u32, 4, 5] {
            let p = net.coord(v);
            assert_eq!(grid.region_of(p.x, p.y), 1);
        }
    }

    #[test]
    fn isolated_config_disables_handoff_and_rebalance() {
        let c = ShardingConfig::isolated();
        assert_eq!(c.handoff_band, 0.0);
        assert!(!c.rebalance);
        let d = ShardingConfig::default();
        assert!(d.handoff_band > 0.0);
        assert!(d.rebalance);
    }
}
