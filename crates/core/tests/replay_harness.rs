//! Integration tests of the record/replay harness: a trace recorded through
//! the simulator must replay bit-identically (across worker counts), and a
//! deliberately perturbed dispatcher must be flagged with the first divergent
//! batch.

use structride_core::replay::{replay_trace, Trace, TraceMeta, TraceRecorder};
use structride_core::{
    BatchOutcome, DispatchContext, Dispatcher, SardDispatcher, SimulationReport, Simulator,
    StructRideConfig,
};
use structride_datagen::{CityProfile, Workload, WorkloadParams};
use structride_model::{insertion, Request, Vehicle};

fn tiny_workload() -> Workload {
    Workload::generate(WorkloadParams {
        num_requests: 60,
        num_vehicles: 10,
        horizon: 240.0,
        scale: 0.3,
        ..WorkloadParams::small(CityProfile::NycLike)
    })
}

fn record_sard(workload: &Workload, config: StructRideConfig) -> (Trace, SimulationReport) {
    let simulator = Simulator::new(config);
    let mut sard = SardDispatcher::new(config);
    let mut recorder = TraceRecorder::new();
    let report = simulator.run_recorded(
        &workload.engine,
        &workload.requests,
        workload.fresh_vehicles(),
        &mut sard,
        &workload.name,
        &mut recorder,
    );
    let mut meta = TraceMeta::new(sard.name(), &workload.name, config);
    meta.sp_stats = Some(workload.engine.stats());
    meta.build_stats = sard.build_stats();
    (recorder.into_trace(meta), report)
}

#[test]
fn recorded_sard_trace_replays_clean() {
    let workload = tiny_workload();
    let config = StructRideConfig::default();
    let (trace, report) = record_sard(&workload, config);
    assert_eq!(trace.batches.len(), report.metrics.batches);
    assert!(!trace.batches.is_empty());
    // The recorded outcome matches the run: every request served in the run
    // appears in exactly one batch's assignment list.
    let recorded_assigned: usize = trace.batches.iter().map(|b| b.assigned.len()).sum();
    assert_eq!(recorded_assigned, report.metrics.served_requests);

    let mut fresh = SardDispatcher::new(config);
    let drift = replay_trace(&workload.engine, &mut fresh, &trace);
    assert!(
        drift.is_clean(),
        "fresh SARD must reproduce its trace:\n{drift}"
    );
    assert_eq!(drift.batches_compared, trace.batches.len());
}

#[test]
fn recorded_trace_survives_text_roundtrip_and_replays_clean() {
    let workload = tiny_workload();
    let config = StructRideConfig::default();
    let (trace, _) = record_sard(&workload, config);
    let parsed = Trace::parse(&trace.to_text()).expect("round-trip parse");
    assert_eq!(
        parsed, trace,
        "text round-trip must be lossless (bit-exact floats)"
    );
    let mut fresh = SardDispatcher::new(config);
    let drift = replay_trace(&workload.engine, &mut fresh, &parsed);
    assert!(drift.is_clean(), "parsed trace must replay clean:\n{drift}");
}

#[test]
fn replay_is_invariant_across_worker_counts() {
    let workload = tiny_workload();
    let config = StructRideConfig::default();
    // Record at the ambient worker count…
    let (trace, _) = record_sard(&workload, config);
    // …and replay under explicit 1-thread and many-thread pools.  This is the
    // replay invariant: a recorded trace replays bit-identically regardless
    // of the worker count.
    for threads in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let drift = pool.install(|| {
            let mut fresh = SardDispatcher::new(config);
            replay_trace(&workload.engine, &mut fresh, &trace)
        });
        assert!(
            drift.is_clean(),
            "drift with {threads} worker thread(s):\n{drift}"
        );
    }
}

/// Greedy insertion with an inverted vehicle preference: instead of the
/// cheapest feasible vehicle it commits to the most expensive one — the
/// "deliberately perturbed dispatcher" the harness must flag.
struct PerturbedGreedy {
    invert: bool,
}

impl Dispatcher for PerturbedGreedy {
    fn name(&self) -> &'static str {
        "perturbed-greedy"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::empty();
        for r in new_requests {
            let mut best: Option<(usize, insertion::InsertionOutcome)> = None;
            for (vi, v) in vehicles.iter().enumerate() {
                if let Some(out) = insertion::insert_request(ctx.engine, v, r) {
                    let better = match &best {
                        None => true,
                        Some((_, b)) => {
                            if self.invert {
                                out.added_cost > b.added_cost + 1e-12
                            } else {
                                out.added_cost < b.added_cost - 1e-12
                            }
                        }
                    };
                    if better {
                        best = Some((vi, out));
                    }
                }
            }
            if let Some((vi, out)) = best {
                vehicles[vi].commit_schedule(out.schedule);
                outcome.assigned.push(r.id);
            }
        }
        outcome
    }
}

#[test]
fn perturbed_dispatcher_is_flagged_with_first_divergent_batch() {
    let workload = tiny_workload();
    let config = StructRideConfig::default();
    let simulator = Simulator::new(config);
    let mut recorder = TraceRecorder::new();
    let mut sane = PerturbedGreedy { invert: false };
    let report = simulator.run_recorded(
        &workload.engine,
        &workload.requests,
        workload.fresh_vehicles(),
        &mut sane,
        &workload.name,
        &mut recorder,
    );
    assert!(report.metrics.served_requests > 0);
    let trace = recorder.into_trace(TraceMeta::new("perturbed-greedy", &workload.name, config));

    // Sanity: the unperturbed dispatcher reproduces its own trace.
    let mut same = PerturbedGreedy { invert: false };
    let clean = replay_trace(&workload.engine, &mut same, &trace);
    assert!(clean.is_clean(), "{clean}");

    // The inverted preference must drift, and the report must pin the first
    // divergent batch with per-field deltas.
    let mut perturbed = PerturbedGreedy { invert: true };
    let drift = replay_trace(&workload.engine, &mut perturbed, &trace);
    assert!(!drift.is_clean(), "inverted tie-break must be flagged");
    let first = drift.first_divergence().expect("first divergent batch");
    assert!(first.batch_index < trace.batches.len());
    assert!(!first.deltas.is_empty());
    // Divergences are reported in batch order, so the first one really is
    // the earliest drifting batch.
    for pair in drift.divergences.windows(2) {
        assert!(pair[0].batch_index < pair[1].batch_index);
    }
    let rendered = drift.to_string();
    assert!(
        rendered.contains(&format!("first at batch {}", first.batch_index)),
        "{rendered}"
    );
}
