//! Batch-boundary checkpoint/restore property tests.
//!
//! The contract under test (see `structride_core::replay::Checkpoint`):
//! a run that writes checkpoints finishes bit-identically to one that does
//! not, and a run resumed from any checkpoint — after a text-codec
//! round-trip, under any worker-thread count — finishes bit-identically to
//! the uninterrupted run: same deterministic metrics, same served set, same
//! final fleet.  Exercised monolithically and on a faulted 3-shard rush-hour
//! run (traffic epochs, shard outages and failover all crossing the
//! checkpoint boundary).

use structride_core::shard::{region_grid_for, ShardDispatcher, ShardedSimulator};
use structride_core::{
    Checkpoint, FaultConfig, RunMetrics, SardDispatcher, Simulator, StructRideConfig, VehicleState,
};
use structride_datagen::{
    CityProfile, MultiRegionParams, MultiRegionWorkload, Workload, WorkloadParams,
};
use structride_model::Vehicle;
use structride_roadnet::{SpEngine, SpEngineBuilder, TrafficConfig, TrafficProfile};

fn sard_factory(config: StructRideConfig) -> impl Fn(usize) -> ShardDispatcher {
    move |_| Box::new(SardDispatcher::new(config))
}

fn single_city_workload() -> Workload {
    Workload::generate(WorkloadParams {
        num_requests: 90,
        num_vehicles: 12,
        horizon: 240.0,
        scale: 0.3,
        ..WorkloadParams::small(CityProfile::NycLike)
    })
}

fn multi_workload(regions: usize) -> MultiRegionWorkload {
    let cities = [
        CityProfile::ChengduLike,
        CityProfile::NycLike,
        CityProfile::CainiaoLike,
    ];
    MultiRegionWorkload::generate(MultiRegionParams {
        requests_per_region: 60,
        vehicles_per_region: 8,
        horizon: 200.0,
        scale: 0.3,
        ..MultiRegionParams::small(cities.iter().cycle().take(regions).copied().collect())
    })
}

/// The deterministic [`RunMetrics`] fields (wall-clock diagnostics —
/// `running_time`, `sp_queries`, `memory_bytes` — excluded, as everywhere).
fn deterministic_fields(
    m: &RunMetrics,
) -> (String, String, usize, usize, u64, u64, u64, usize, u64, u64) {
    (
        m.algorithm.clone(),
        m.workload.clone(),
        m.total_requests,
        m.served_requests,
        m.total_travel.to_bits(),
        m.unserved_direct_cost.to_bits(),
        m.unified_cost.to_bits(),
        m.batches,
        m.insertion_evaluations,
        m.groups_enumerated,
    )
}

/// Bit-comparable snapshot of a final fleet.
fn fleet_states(vehicles: &[Vehicle]) -> Vec<VehicleState> {
    vehicles.iter().map(VehicleState::capture).collect()
}

fn in_pool<T>(threads: usize, f: impl FnOnce() -> T + Send) -> T
where
    T: Send,
{
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn monolithic_checkpoint_resume_is_bit_identical() {
    let w = single_city_workload();
    let traffic = TrafficConfig {
        profile: TrafficProfile::Rush,
        epoch_seconds: 40.0,
        hour_scale: 20.0,
        ..TrafficConfig::default()
    };
    let faults = FaultConfig {
        seed: 3,
        checkpoint_every: 4,
        ..FaultConfig::default()
    };
    let config = StructRideConfig::default()
        .with_traffic(traffic)
        .with_faults(faults);
    let sim = Simulator::new(config);
    let fresh_engine = || -> SpEngine {
        SpEngineBuilder::new()
            .traffic(traffic)
            .build(w.engine.network().clone())
    };

    let baseline = in_pool(1, || {
        let engine = fresh_engine();
        let mut sard = SardDispatcher::new(config);
        sim.run(&engine, &w.requests, w.fresh_vehicles(), &mut sard, &w.name)
    });
    assert!(baseline.metrics.served_requests > 0);

    // A checkpointing run is bit-identical to a plain run (capture is a
    // pure read) — even under a different worker count.
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    let with_ckpts = in_pool(4, || {
        let engine = fresh_engine();
        let mut sard = SardDispatcher::new(config);
        sim.run_with_checkpoints(
            &engine,
            &w.requests,
            w.fresh_vehicles(),
            &mut sard,
            &w.name,
            &mut |c| checkpoints.push(c),
        )
    });
    assert_eq!(
        deterministic_fields(&with_ckpts.metrics),
        deterministic_fields(&baseline.metrics),
        "writing checkpoints must not perturb the run"
    );
    assert_eq!(with_ckpts.served, baseline.served);
    assert!(
        checkpoints.len() >= 2,
        "the cadence must fire at least twice over {} batches",
        baseline.metrics.batches
    );
    for (i, c) in checkpoints.iter().enumerate() {
        assert!(!c.sharded);
        assert_eq!(c.batches, (i + 1) * faults.checkpoint_every as usize);
        assert_eq!(c.config.faults, faults);
    }

    // Resume from a mid-run checkpoint — after a text-codec round-trip, at
    // 1 and 4 worker threads — and land exactly on the uninterrupted run.
    let picked = &checkpoints[checkpoints.len() / 2];
    let reparsed = Checkpoint::parse(&picked.to_text()).expect("checkpoint codec");
    assert_eq!(&reparsed, picked);
    for threads in [1usize, 4] {
        let resumed = in_pool(threads, || {
            let engine = fresh_engine();
            let mut sard = SardDispatcher::new(config);
            sim.resume(&engine, &w.requests, &mut sard, &reparsed)
        });
        assert_eq!(
            deterministic_fields(&resumed.metrics),
            deterministic_fields(&baseline.metrics),
            "resume at {threads} threads must finish bit-identically"
        );
        assert_eq!(resumed.served, baseline.served);
        assert_eq!(
            fleet_states(&resumed.vehicles),
            fleet_states(&baseline.vehicles),
            "final fleet state must match bit for bit"
        );
    }
}

#[test]
fn faulted_sharded_rush_checkpoint_resume_is_bit_identical() {
    let w = multi_workload(3);
    // Rush-profile congestion with a compressed clock (epochs every 40 s),
    // shard outages every 6 batches for 2 batches, checkpoints every 5:
    // outages, failover reroutes and epoch rolls all cross checkpoint
    // boundaries.
    let traffic = TrafficConfig {
        profile: TrafficProfile::Rush,
        epoch_seconds: 40.0,
        hour_scale: 20.0,
        ..TrafficConfig::default()
    };
    let faults = FaultConfig {
        seed: 7,
        outage_every: 6,
        outage_batches: 2,
        checkpoint_every: 5,
        ..FaultConfig::default()
    };
    let config = StructRideConfig::default()
        .with_traffic(traffic)
        .with_faults(faults);
    let sim = ShardedSimulator::new(config);
    let regions = region_grid_for(w.network(), 1, 3);

    let baseline = in_pool(1, || {
        sim.run(
            w.network(),
            &regions,
            &w.requests,
            w.fresh_vehicles(),
            sard_factory(config),
            &w.name,
        )
    });
    assert!(baseline.faults_injected > 0, "outages must fire");
    assert!(baseline.epoch_rolls > 0, "epochs must roll");
    assert!(baseline.aggregate.served_requests > 0);

    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    let with_ckpts = in_pool(1, || {
        sim.run_with_checkpoints(
            w.network(),
            &regions,
            &w.requests,
            w.fresh_vehicles(),
            sard_factory(config),
            &w.name,
            &mut |c| checkpoints.push(c),
        )
    });
    assert_eq!(
        deterministic_fields(&with_ckpts.aggregate),
        deterministic_fields(&baseline.aggregate),
        "writing checkpoints must not perturb the sharded run"
    );
    assert_eq!(with_ckpts.served, baseline.served);
    assert!(checkpoints.len() >= 2);

    // Pick the checkpoint closest to mid-run and push it through the file
    // codec, exactly as the CI kill/resume smoke does.
    let picked = &checkpoints[checkpoints.len() / 2];
    assert!(picked.sharded);
    assert_eq!(picked.shards.len(), 3);
    assert_eq!(picked.config.faults, faults);
    let path = std::env::temp_dir().join(format!("structride_ckpt_{}.txt", std::process::id()));
    picked.save(&path).expect("save checkpoint");
    let loaded = Checkpoint::load(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();
    assert_eq!(&loaded, picked);

    for threads in [1usize, 4] {
        let resumed = in_pool(threads, || {
            sim.resume(
                w.network(),
                &regions,
                &w.requests,
                sard_factory(config),
                &loaded,
            )
        });
        assert_eq!(
            deterministic_fields(&resumed.aggregate),
            deterministic_fields(&baseline.aggregate),
            "sharded resume at {threads} threads must finish bit-identically"
        );
        for (a, b) in resumed.per_shard.iter().zip(&baseline.per_shard) {
            assert_eq!(deterministic_fields(a), deterministic_fields(b));
        }
        assert_eq!(resumed.served, baseline.served);
        assert_eq!(
            fleet_states(&resumed.vehicles),
            fleet_states(&baseline.vehicles)
        );
        assert_eq!(resumed.handoffs, baseline.handoffs);
        assert_eq!(resumed.handoff_bids, baseline.handoff_bids);
        assert_eq!(resumed.migrations, baseline.migrations);
        assert_eq!(resumed.epoch_rolls, baseline.epoch_rolls);
        assert_eq!(resumed.faults_injected, baseline.faults_injected);
        assert_eq!(resumed.batches_degraded, baseline.batches_degraded);
        assert_eq!(resumed.degraded_offered, baseline.degraded_offered);
        assert_eq!(resumed.degraded_served, baseline.degraded_served);
    }
}
