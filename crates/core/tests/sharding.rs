//! Integration tests for the multi-region sharded dispatch pipeline:
//! single-shard reduction to the monolithic simulator, worker-count
//! determinism of sharded runs, shard-merge accounting, the partitioner
//! boundary cases (empty shard, all vehicles in one shard), the
//! halo-clipped sub-network engine equivalence and the top-m handoff
//! shortlist.

use std::collections::HashSet;
use std::sync::Arc;
use structride_core::replay::{diff_traces, TraceMeta, TraceRecorder};
use structride_core::shard::{
    halo_vertices, region_grid_for, region_strips_for, ShardDispatcher, ShardedSimulator,
    ShardingConfig,
};
use structride_core::{
    DispatchContext, Dispatcher, FaultConfig, FleetIndex, RunMetrics, SardDispatcher, Simulator,
    StructRideConfig,
};
use structride_datagen::{
    CityProfile, MultiRegionParams, MultiRegionWorkload, Workload, WorkloadParams,
};
use structride_model::insertion;
use structride_roadnet::{HubLabels, SpEngineBuilder, TrafficConfig, TrafficProfile};

fn sard_factory(config: StructRideConfig) -> impl Fn(usize) -> ShardDispatcher {
    move |_| Box::new(SardDispatcher::new(config))
}

fn single_city_workload() -> Workload {
    Workload::generate(WorkloadParams {
        num_requests: 90,
        num_vehicles: 12,
        horizon: 240.0,
        scale: 0.3,
        ..WorkloadParams::small(CityProfile::NycLike)
    })
}

fn multi_workload(regions: usize) -> MultiRegionWorkload {
    let cities = [
        CityProfile::ChengduLike,
        CityProfile::NycLike,
        CityProfile::CainiaoLike,
    ];
    MultiRegionWorkload::generate(MultiRegionParams {
        requests_per_region: 60,
        vehicles_per_region: 8,
        horizon: 200.0,
        scale: 0.3,
        ..MultiRegionParams::small(cities.iter().cycle().take(regions).copied().collect())
    })
}

/// The fields of [`RunMetrics`] that must match bit for bit between a
/// 1-shard sharded run and the monolithic simulator.  Excluded diagnostics:
/// `running_time` is wall-clock, `sp_queries` is the one documented
/// worker-count-dependent counter (cache-miss races), and `memory_bytes`
/// deliberately measures different things (dispatcher working set in the
/// monolithic run, per-shard label-index bytes in the sharded one).
fn deterministic_fields(
    m: &RunMetrics,
) -> (String, String, usize, usize, u64, u64, u64, usize, u64, u64) {
    (
        m.algorithm.clone(),
        m.workload.clone(),
        m.total_requests,
        m.served_requests,
        m.total_travel.to_bits(),
        m.unserved_direct_cost.to_bits(),
        m.unified_cost.to_bits(),
        m.batches,
        m.insertion_evaluations,
        m.groups_enumerated,
    )
}

#[test]
fn single_shard_reduces_exactly_to_the_monolithic_simulator() {
    let w = single_city_workload();
    let config = StructRideConfig::default();

    let mut sard = SardDispatcher::new(config);
    let mono = Simulator::new(config).run(
        &w.engine,
        &w.requests,
        w.fresh_vehicles(),
        &mut sard,
        &w.name,
    );

    let regions = region_strips_for(w.engine.network(), 1);
    let sharded = ShardedSimulator::new(config).run(
        w.engine.network(),
        &regions,
        &w.requests,
        w.fresh_vehicles(),
        sard_factory(config),
        &w.name,
    );

    assert_eq!(sharded.per_shard.len(), 1);
    assert_eq!(sharded.handoffs, 0);
    assert_eq!(sharded.handoff_bids, 0);
    assert_eq!(sharded.migrations, 0);
    assert_eq!(
        deterministic_fields(&sharded.aggregate),
        deterministic_fields(&mono.metrics),
        "1-shard aggregate must equal the monolithic run"
    );
    assert_eq!(sharded.served, mono.served);
    // The executed fleets agree vehicle by vehicle.
    let mut mono_fleet = mono.vehicles.clone();
    mono_fleet.sort_by_key(|v| v.id);
    assert_eq!(mono_fleet.len(), sharded.vehicles.len());
    for (a, b) in mono_fleet.iter().zip(&sharded.vehicles) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.node, b.node);
        assert_eq!(a.executed_travel.to_bits(), b.executed_travel.to_bits());
        assert_eq!(a.completed, b.completed);
    }
}

#[test]
fn sharded_run_is_deterministic_across_worker_counts() {
    let w = multi_workload(3);
    let config = StructRideConfig::default();
    let sim = ShardedSimulator::new(config);

    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut recorder = TraceRecorder::new();
            let report = sim.run_recorded(
                w.network(),
                &w.regions,
                &w.requests,
                w.fresh_vehicles(),
                sard_factory(config),
                &w.name,
                &mut recorder,
            );
            let trace = recorder.into_trace(TraceMeta::new("SARD", &w.name, config));
            (report, trace)
        })
    };

    let (report1, trace1) = run_with(1);
    let (report8, trace8) = run_with(8);

    let drift = diff_traces(&trace1, &trace8);
    assert!(drift.is_clean(), "1-vs-8 workers drifted:\n{drift}");
    assert!(trace1.batches.len() > 1, "trace must cover several batches");
    assert_eq!(
        deterministic_fields(&report1.aggregate),
        deterministic_fields(&report8.aggregate)
    );
    for (a, b) in report1.per_shard.iter().zip(&report8.per_shard) {
        assert_eq!(deterministic_fields(a), deterministic_fields(b));
    }
    assert_eq!(report1.handoffs, report8.handoffs);
    assert_eq!(report1.migrations, report8.migrations);
    assert_eq!(report1.served, report8.served);
    // The canonical text codec round-trips the sharded trace exactly.
    let reparsed = structride_core::Trace::parse(&trace1.to_text()).expect("codec");
    assert!(diff_traces(&trace1, &reparsed).is_clean());
}

#[test]
fn aggregate_is_the_merge_of_the_per_shard_parts() {
    let w = multi_workload(3);
    let config = StructRideConfig::default();
    let report = ShardedSimulator::new(config).run(
        w.network(),
        &w.regions,
        &w.requests,
        w.fresh_vehicles(),
        sard_factory(config),
        &w.name,
    );
    assert_eq!(report.per_shard.len(), 3);
    let merged = RunMetrics::merge_all(&report.per_shard, &config.cost).expect("parts");
    assert_eq!(merged, report.aggregate);
    // Every request was routed to exactly one shard, and the global served
    // set is the disjoint union of the per-shard ones.
    let routed: usize = report.per_shard.iter().map(|m| m.total_requests).sum();
    assert_eq!(routed, w.requests.len());
    let served: usize = report.per_shard.iter().map(|m| m.served_requests).sum();
    assert_eq!(served, report.served.len());
    assert!(served > 0, "the multi-region run must serve something");
    // Delivered requests match the served bookkeeping.
    let delivered: HashSet<u32> = report
        .vehicles
        .iter()
        .flat_map(|v| v.completed.iter().copied())
        .collect();
    for id in &report.served {
        assert!(
            delivered.contains(id),
            "assigned request {id} was delivered"
        );
    }
}

#[test]
fn empty_shards_are_harmless() {
    // Strip layout three times wider than the network: every node, vehicle
    // and request sits in region 0; regions 1 and 2 stay empty for the whole
    // run.
    let w = single_city_workload();
    let net = w.engine.network();
    let (min_x, min_y, max_x, max_y) = net.bounding_box();
    let width = max_x - min_x;
    let regions = structride_spatial::RegionGrid::strips(
        min_x,
        min_y,
        min_x + width * 3.0 + 3.0,
        max_y.max(min_y + 1.0),
        3,
    );
    let config = StructRideConfig::default();
    let report = ShardedSimulator::new(config).run(
        net,
        &regions,
        &w.requests,
        w.fresh_vehicles(),
        sard_factory(config),
        &w.name,
    );
    assert_eq!(report.per_shard[0].total_requests, w.requests.len());
    for empty in [1, 2] {
        let m = &report.per_shard[empty];
        assert_eq!(m.total_requests, 0);
        assert_eq!(m.served_requests, 0);
        assert_eq!(m.total_travel, 0.0);
        assert_eq!(m.unified_cost, 0.0);
    }
    assert!(report.aggregate.served_requests > 0);
    assert_eq!(report.migrations, 0, "nothing pends in an empty shard");
    // The populated shard matches the monolithic run (the empty shards are
    // pure identity elements of the merge).
    let mut sard = SardDispatcher::new(config);
    let mono = Simulator::new(config).run(
        &w.engine,
        &w.requests,
        w.fresh_vehicles(),
        &mut sard,
        &w.name,
    );
    assert_eq!(
        report.aggregate.served_requests,
        mono.metrics.served_requests
    );
    assert_eq!(
        report.aggregate.total_travel.to_bits(),
        mono.metrics.total_travel.to_bits()
    );
}

#[test]
fn handoff_lets_a_vehicleless_shard_borrow_neighbours() {
    // Two regions, but the entire fleet starts in region 0.  Without
    // handoff, shard 1 can never serve anything; with the boundary band its
    // border requests are auctioned to shard 0's fleet.
    let w = multi_workload(2);
    let config = StructRideConfig::default();
    let west_fleet: Vec<_> = w
        .fresh_vehicles()
        .into_iter()
        .filter(|v| {
            let p = w.network().coord(v.node);
            w.regions.region_of(p.x, p.y) == 0
        })
        .collect();
    assert!(!west_fleet.is_empty());

    let isolated = ShardedSimulator::with_sharding(config, ShardingConfig::isolated()).run(
        w.network(),
        &w.regions,
        &w.requests,
        west_fleet.clone(),
        sard_factory(config),
        &w.name,
    );
    assert_eq!(
        isolated.per_shard[1].served_requests, 0,
        "no fleet and no handoff: the east shard serves nothing"
    );
    assert_eq!(isolated.handoffs, 0);

    let banded = ShardedSimulator::with_sharding(
        config,
        ShardingConfig {
            handoff_band: 600.0,
            rebalance: false,
            max_migrations_per_batch: 0,
            ..ShardingConfig::default()
        },
    )
    .run(
        w.network(),
        &w.regions,
        &w.requests,
        west_fleet,
        sard_factory(config),
        &w.name,
    );
    assert!(
        banded.handoffs > 0,
        "east-side boundary requests must be handed to the west shard"
    );
    assert!(banded.handoff_bids > 0);
    assert!(
        banded.aggregate.served_requests >= isolated.aggregate.served_requests,
        "handoff must not lose service ({} vs {})",
        banded.aggregate.served_requests,
        isolated.aggregate.served_requests
    );
}

/// The halo-correctness property behind the sub-network engines: for every
/// shard of a real multi-region workload, the halo-clipped engine answers
/// **every** origin–destination pair — both endpoints in the halo (served by
/// the per-shard label slice) or not (served by the shared-index fallback) —
/// bit-identically to a whole-network engine.
#[test]
fn halo_clipped_engines_answer_bit_identically_to_the_full_engine() {
    let w = multi_workload(3);
    let network = w.network();
    let shared = Arc::new(network.clone());
    let labels = Arc::new(HubLabels::build(&shared));
    let full = SpEngineBuilder::new().build_with_index(shared.clone(), labels.clone());
    let band = ShardingConfig::default().handoff_band;
    let halos = halo_vertices(network, &w.regions, band);
    assert_eq!(halos.len(), 3);

    let n = network.node_count() as u32;
    for (shard, halo) in halos.iter().enumerate() {
        assert!(!halo.is_empty(), "strip regions always hold vertices");
        let clipped = SpEngineBuilder::new().build_clipped(shared.clone(), labels.clone(), halo);
        assert!(clipped.is_clipped(), "3-strip halos never cover everything");
        let clip = clipped.clip().expect("clipped engine exposes its halo");
        assert_eq!(clip.len(), halo.len());
        // Every vertex of the shard's own region is inside its halo.
        for v in network.nodes() {
            let p = network.coord(v);
            if w.regions.region_of(p.x, p.y) as usize == shard {
                assert!(clip.contains(v), "region vertex {v} missing from halo");
            }
        }
        // All pairs over a deterministic sample of sources (halo + outside),
        // all destinations: bit-identical to the full engine.
        let sources: Vec<u32> = (0..n).step_by(7).collect();
        for &s in &sources {
            for t in (0..n).step_by(5) {
                let c = clipped.cost_uncached(s, t);
                let f = full.cost_uncached(s, t);
                assert_eq!(
                    c.to_bits(),
                    f.to_bits(),
                    "shard {shard}: ({s},{t}) clipped={c} full={f}"
                );
            }
        }
        assert!(
            clipped.index_bytes() < full.index_bytes(),
            "a 3-strip halo slice must be smaller than the full index"
        );
    }
}

/// The exactness of the handoff-shortlist prescreen: whenever an exact
/// insertion is feasible, the vehicle's certified reachability lower bound
/// (`free_at + min_time_per_meter × euclidean(vehicle, pickup)`) meets the
/// pickup deadline within the one-second grace — so prescreening on that
/// bound can never drop a feasible bidder, and `handoff_bids` is invariant
/// under the shortlist refactor.
#[test]
fn reachability_prescreen_never_drops_a_feasible_bidder() {
    let w = multi_workload(2);
    let network = w.network();
    let min_tpm = network.min_time_per_meter();
    assert!(
        min_tpm > 0.0,
        "city networks have a positive per-meter rate"
    );
    let vehicles = w.fresh_vehicles();
    let mut feasible = 0u32;
    let mut prescreen_would_keep = 0u32;
    for request in &w.requests {
        let rp = network.coord(request.source);
        for vehicle in &vehicles {
            let lb = min_tpm * network.coord(vehicle.node).distance(&rp);
            let passes = vehicle.free_at + lb <= request.pickup_deadline + 1.0;
            if insertion::insert_request(&w.engine, vehicle, request).is_some() {
                feasible += 1;
                assert!(
                    passes,
                    "request {} / vehicle {}: feasible insertion but prescreen fails \
                     (free_at={}, lb={}, deadline={})",
                    request.id, vehicle.id, vehicle.free_at, lb, request.pickup_deadline
                );
            }
            if passes {
                prescreen_would_keep += 1;
            }
        }
    }
    assert!(
        feasible > 0,
        "the workload must exercise feasible insertions"
    );
    assert!(
        prescreen_would_keep < w.requests.len() as u32 * vehicles.len() as u32,
        "the prescreen must actually prune something on a multi-region map"
    );
}

/// The batched many-to-many kernel behind the prescreened candidate scoring:
/// on a real multi-region network, `SpEngine::many_to_many` answers every
/// (source, target) pair bit-identically to the pairwise `cost_uncached`
/// queries it replaces — through the full hub-label index and through a
/// halo-clipped per-shard slice (which may route whole matrices to the
/// shared-index fallback).
#[test]
fn many_to_many_matches_pairwise_queries_bit_for_bit() {
    let w = multi_workload(3);
    let network = w.network();
    let n = network.node_count() as u32;
    let sources: Vec<u32> = (0..n).step_by(11).collect();
    let targets: Vec<u32> = (0..n).step_by(13).collect();
    assert!(sources.len() > 2 && targets.len() > 2);

    let check = |engine: &structride_roadnet::SpEngine, label: &str| {
        let matrix = engine.many_to_many(&sources, &targets);
        assert_eq!(matrix.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                let batched = matrix[i * targets.len() + j];
                let pairwise = engine.cost_uncached(s, t);
                assert_eq!(
                    batched.to_bits(),
                    pairwise.to_bits(),
                    "{label}: ({s},{t}) batched={batched} pairwise={pairwise}"
                );
            }
        }
    };
    check(&w.engine, "full index");

    let shared = Arc::new(network.clone());
    let labels = Arc::new(HubLabels::build(&shared));
    let band = ShardingConfig::default().handoff_band;
    let halo = &halo_vertices(network, &w.regions, band)[1];
    let clipped = SpEngineBuilder::new().build_clipped(shared.clone(), labels, halo);
    assert!(clipped.is_clipped());
    check(&clipped, "halo-clipped slice");
}

/// The certified prescreen end to end: driving the SARD dispatcher over the
/// same batches with and without a fleet index produces bit-identical
/// assignments, group enumeration, and final fleets — while the prescreen
/// actually skips vehicles (the whole point) on a multi-city map.
#[test]
fn sard_with_fleet_index_matches_the_full_scan_bit_for_bit() {
    let w = multi_workload(3);
    let config = StructRideConfig::default();
    let engine = &w.engine;
    let bbox = structride_spatial::RegionGrid::padded_bbox(engine.network().bounding_box());

    let mut full_scan = SardDispatcher::new(config);
    let mut prescreened = SardDispatcher::new(config);
    let mut fleet_full = w.fresh_vehicles();
    let mut fleet_pre = w.fresh_vehicles();
    let mut pruned = 0u64;
    for (bi, chunk) in w.requests.chunks(12).enumerate() {
        let ctx_full = DispatchContext::for_batch(engine, config, 0.0, bi);
        let out_full = full_scan.dispatch_batch(&ctx_full, &mut fleet_full, chunk);

        let index = FleetIndex::build(bbox, config.grid_cells, engine.network(), &fleet_pre);
        let ctx_pre = DispatchContext::for_batch(engine, config, 0.0, bi).with_fleet_index(&index);
        let out_pre = prescreened.dispatch_batch(&ctx_pre, &mut fleet_pre, chunk);

        assert_eq!(
            out_full.assigned, out_pre.assigned,
            "batch {bi} assignments"
        );
        assert_eq!(
            ctx_full.scratch.snapshot().groups_enumerated,
            ctx_pre.scratch.snapshot().groups_enumerated,
            "batch {bi} group enumeration"
        );
        pruned += ctx_pre.scratch.snapshot().prescreen_pruned;
    }
    assert!(
        pruned > 0,
        "a multi-city fleet must have provably unreachable vehicles"
    );
    assert_eq!(fleet_full.len(), fleet_pre.len());
    for (a, b) in fleet_full.iter().zip(&fleet_pre) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.node, b.node);
        assert_eq!(a.free_at.to_bits(), b.free_at.to_bits());
        assert_eq!(
            a.planned_cost(engine).to_bits(),
            b.planned_cost(engine).to_bits()
        );
    }
}

/// The top-m cap: uncapped (`top_m: 0`) bidding equals the default (the cap
/// is out of reach for these fleets), a tiny cap still yields a
/// deterministic worker-count-independent run, and capping can only reduce
/// the number of evaluated bids.
#[test]
fn top_m_shortlist_caps_bids_deterministically() {
    let w = multi_workload(2);
    let config = StructRideConfig::default();
    // The whole fleet starts west so east-border requests must be auctioned
    // across the boundary (the same setup as the handoff tests).
    let west_fleet: Vec<_> = w
        .fresh_vehicles()
        .into_iter()
        .filter(|v| {
            let p = w.network().coord(v.node);
            w.regions.region_of(p.x, p.y) == 0
        })
        .collect();
    let run = |top_m: usize, threads: usize| {
        let sharding = ShardingConfig {
            handoff_band: 600.0,
            rebalance: false,
            max_migrations_per_batch: 0,
            top_m,
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut recorder = TraceRecorder::new();
            let report = ShardedSimulator::with_sharding(config, sharding).run_recorded(
                w.network(),
                &w.regions,
                &w.requests,
                west_fleet.clone(),
                sard_factory(config),
                &w.name,
                &mut recorder,
            );
            (
                report,
                recorder.into_trace(TraceMeta::new("SARD", &w.name, config)),
            )
        })
    };

    let (default_cap, trace_default) = run(ShardingConfig::default().top_m, 4);
    let (uncapped, trace_uncapped) = run(0, 4);
    assert!(default_cap.handoff_bids > 0);
    assert!(
        diff_traces(&trace_default, &trace_uncapped).is_clean(),
        "the default cap must be out of reach for this fleet"
    );
    assert_eq!(default_cap.handoff_bids, uncapped.handoff_bids);
    assert_eq!(default_cap.handoffs, uncapped.handoffs);

    let (tiny1, trace_tiny1) = run(1, 1);
    let (tiny8, trace_tiny8) = run(1, 8);
    assert!(
        diff_traces(&trace_tiny1, &trace_tiny8).is_clean(),
        "a binding cap must stay worker-count deterministic"
    );
    assert_eq!(tiny1.handoff_bids, tiny8.handoff_bids);
    assert!(
        tiny1.handoff_bids <= uncapped.handoff_bids,
        "capping can only reduce evaluated bids"
    );
}

/// Six regions in a 2×3 grid (the higher-shard-count CI bench row): the run
/// completes, every shard is accounted for, and the aggregate still merges.
#[test]
fn two_by_three_grid_sharding_runs_and_merges() {
    let w = multi_workload(3);
    let config = StructRideConfig::default();
    let regions = region_grid_for(w.network(), 2, 3);
    assert_eq!(regions.len(), 6);
    let report = ShardedSimulator::new(config).run(
        w.network(),
        &regions,
        &w.requests,
        w.fresh_vehicles(),
        sard_factory(config),
        &w.name,
    );
    assert_eq!(report.per_shard.len(), 6);
    let routed: usize = report.per_shard.iter().map(|m| m.total_requests).sum();
    assert_eq!(routed, w.requests.len());
    assert!(report.aggregate.served_requests > 0);
    let merged = RunMetrics::merge_all(&report.per_shard, &config.cost).expect("parts");
    assert_eq!(merged, report.aggregate);
    assert!(report.label_bytes > 0);
    assert!(report.full_build_seconds > 0.0);
    assert!(report.setup_seconds >= report.full_build_seconds);
}

#[test]
fn rush_hour_sharded_run_rolls_epochs_and_is_worker_count_independent() {
    let w = multi_workload(3);
    // Compressed clock: epochs every 40 s with 20 s "hours", so the 200 s
    // horizon sweeps free-flow *and* congested rush-profile multipliers
    // (epoch starts 0..=200 cover hours 0..=10, peaking at 1.75 at hour 8).
    let traffic = TrafficConfig {
        profile: TrafficProfile::Rush,
        epoch_seconds: 40.0,
        hour_scale: 20.0,
        ..TrafficConfig::default()
    };
    let config = StructRideConfig::default().with_traffic(traffic);
    let sim = ShardedSimulator::new(config);

    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut recorder = TraceRecorder::new();
            let report = sim.run_recorded(
                w.network(),
                &w.regions,
                &w.requests,
                w.fresh_vehicles(),
                sard_factory(config),
                &w.name,
                &mut recorder,
            );
            let trace = recorder.into_trace(TraceMeta::new("SARD", &w.name, config));
            (report, trace)
        })
    };

    let (report1, trace1) = run_with(1);
    let (report8, trace8) = run_with(8);

    assert!(
        report1.epoch_rolls > 0,
        "horizon must cross epoch boundaries"
    );
    assert!(report1.label_refresh_seconds > 0.0);
    assert!(report1.aggregate.served_requests > 0);
    let drift = diff_traces(&trace1, &trace8);
    assert!(
        drift.is_clean(),
        "rush-hour 1-vs-8 workers drifted:\n{drift}"
    );
    assert_eq!(report1.epoch_rolls, report8.epoch_rolls);
    assert_eq!(
        deterministic_fields(&report1.aggregate),
        deterministic_fields(&report8.aggregate)
    );
    assert_eq!(report1.handoffs, report8.handoffs);
    assert_eq!(report1.migrations, report8.migrations);
    assert_eq!(report1.served, report8.served);
    // The traffic model rides along in the recorded trace's config line.
    let reparsed = structride_core::Trace::parse(&trace1.to_text()).expect("codec");
    assert_eq!(reparsed.meta.config.traffic, traffic);
    assert!(diff_traces(&trace1, &reparsed).is_clean());

    // Congestion must actually change the pipeline: the same workload under
    // a static model produces a different recording.
    let static_sim = ShardedSimulator::new(StructRideConfig::default());
    let mut recorder = TraceRecorder::new();
    static_sim.run_recorded(
        w.network(),
        &w.regions,
        &w.requests,
        w.fresh_vehicles(),
        sard_factory(StructRideConfig::default()),
        &w.name,
        &mut recorder,
    );
    let static_trace = recorder.into_trace(TraceMeta::new("SARD", &w.name, config));
    assert!(
        !diff_traces(&trace1, &static_trace).is_clean(),
        "rush-hour congestion must perturb the recorded pipeline"
    );
}

/// The shard-outage degraded mode end to end: a 3-shard run with a
/// deterministic outage schedule keeps exact request accounting (every
/// request routed exactly once, served ⊆ delivered), stays bit-identical
/// across worker counts, records a replayable trace whose config line
/// carries the fault schedule, and actually perturbs the pipeline relative
/// to the healthy run.
#[test]
fn shard_outage_fails_over_requests_and_keeps_exact_accounting() {
    let w = multi_workload(3);
    let faults = FaultConfig {
        seed: 7,
        outage_every: 6,
        outage_batches: 2,
        ..FaultConfig::default()
    };
    let config = StructRideConfig::default().with_faults(faults);

    let run_with = |config: StructRideConfig, threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut recorder = TraceRecorder::new();
            let report = ShardedSimulator::new(config).run_recorded(
                w.network(),
                &w.regions,
                &w.requests,
                w.fresh_vehicles(),
                sard_factory(config),
                &w.name,
                &mut recorder,
            );
            let trace = recorder.into_trace(TraceMeta::new("SARD", &w.name, config));
            (report, trace)
        })
    };

    let (report1, trace1) = run_with(config, 1);
    let (report8, trace8) = run_with(config, 8);

    // The outage schedule fired and was survived.
    assert!(report1.faults_injected > 0, "outage windows must open");
    assert!(report1.batches_degraded >= report1.faults_injected);
    assert!(report1.aggregate.served_requests > 0, "degraded ≠ dead");
    assert!(report1.degraded_served <= report1.degraded_offered);
    let rate = report1.service_rate_degraded();
    assert!((0.0..=1.0).contains(&rate), "degraded rate {rate} in [0,1]");

    // Exact accounting under failover: every request is routed to exactly
    // one live dispatcher (rerouted orphans are not double-counted), and the
    // served bookkeeping matches the delivered fleet state.
    let routed: usize = report1.per_shard.iter().map(|m| m.total_requests).sum();
    assert_eq!(routed, w.requests.len());
    let served: usize = report1.per_shard.iter().map(|m| m.served_requests).sum();
    assert_eq!(served, report1.served.len());
    let delivered: HashSet<u32> = report1
        .vehicles
        .iter()
        .flat_map(|v| v.completed.iter().copied())
        .collect();
    for id in &report1.served {
        assert!(delivered.contains(id), "served request {id} was delivered");
    }
    let merged = RunMetrics::merge_all(&report1.per_shard, &config.cost).expect("parts");
    assert_eq!(merged, report1.aggregate);

    // The degraded pipeline keeps the standing determinism invariant.
    let drift = diff_traces(&trace1, &trace8);
    assert!(drift.is_clean(), "faulted 1-vs-8 workers drifted:\n{drift}");
    assert_eq!(
        deterministic_fields(&report1.aggregate),
        deterministic_fields(&report8.aggregate)
    );
    assert_eq!(report1.faults_injected, report8.faults_injected);
    assert_eq!(report1.batches_degraded, report8.batches_degraded);
    assert_eq!(report1.degraded_offered, report8.degraded_offered);
    assert_eq!(report1.degraded_served, report8.degraded_served);
    assert_eq!(report1.served, report8.served);

    // The fault schedule rides along in the trace config line, so a
    // replaying process re-derives the exact same outages.
    let reparsed = structride_core::Trace::parse(&trace1.to_text()).expect("codec");
    assert_eq!(reparsed.meta.config.faults, faults);
    assert!(diff_traces(&trace1, &reparsed).is_clean());

    // Outages must actually change the pipeline, and the inert default must
    // not: the healthy run is bit-identical to the pre-fault pipeline.
    let (healthy, healthy_trace) = run_with(StructRideConfig::default(), 1);
    assert_eq!(healthy.faults_injected, 0);
    assert_eq!(healthy.batches_degraded, 0);
    assert_eq!(healthy.degraded_offered, 0);
    assert_eq!(healthy.service_rate_degraded(), 0.0);
    assert!(
        !diff_traces(&trace1, &healthy_trace).is_clean(),
        "an injected outage must perturb the recorded pipeline"
    );
}

#[test]
fn sharded_recording_flags_a_different_pipeline() {
    // The end-to-end self-test behind `replay verify --shards`: a re-run
    // with a different sharding configuration produces a trace that
    // diff_traces flags (while a faithful re-run stays clean).  The whole
    // fleet starts in region 0, so a wide handoff band provably reroutes
    // east-border requests to the west shard's dispatcher.
    let w = multi_workload(2);
    let config = StructRideConfig::default();
    let west_fleet: Vec<_> = w
        .fresh_vehicles()
        .into_iter()
        .filter(|v| {
            let p = w.network().coord(v.node);
            w.regions.region_of(p.x, p.y) == 0
        })
        .collect();
    let banded = ShardingConfig {
        handoff_band: 600.0,
        rebalance: false,
        max_migrations_per_batch: 0,
        ..ShardingConfig::default()
    };
    let record = |sharding: ShardingConfig| {
        let mut recorder = TraceRecorder::new();
        let report = ShardedSimulator::with_sharding(config, sharding).run_recorded(
            w.network(),
            &w.regions,
            &w.requests,
            west_fleet.clone(),
            sard_factory(config),
            &w.name,
            &mut recorder,
        );
        (
            report,
            recorder.into_trace(TraceMeta::new("SARD", &w.name, config)),
        )
    };
    let (report_a, a) = record(banded);
    let (_, b) = record(banded);
    assert!(diff_traces(&a, &b).is_clean());
    assert!(report_a.handoffs > 0, "scenario must exercise handoff");

    let (_, isolated) = record(ShardingConfig::isolated());
    let drift = diff_traces(&a, &isolated);
    assert!(
        !drift.is_clean(),
        "disabling handoff must change the recorded pipeline"
    );
}
