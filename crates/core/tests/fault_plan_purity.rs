//! Property tests of the fault-injection purity contract.
//!
//! Everything the injector schedules must be a pure function of
//! `(FaultConfig, batch clock, shard count)`: no RNG state, no wall clock,
//! no worker-count dependence.  That contract is what makes faulted runs
//! recordable, replayable and resumable bit-identically — so it gets the
//! same property-test treatment as the schedule invariants in
//! `structride_model`.

use proptest::prelude::*;
use structride_core::{FaultConfig, FaultPlan};

/// The full injection schedule over `batches` batches, derived batch-wise
/// through a rayon pool of `threads` workers (each batch's plan computed on
/// whatever worker picks it up).
fn schedule_in_pool(
    config: FaultConfig,
    n_shards: usize,
    batches: usize,
    threads: usize,
) -> Vec<FaultPlan> {
    use rayon::prelude::*;
    let indices: Vec<usize> = (0..batches).collect();
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(|| {
            indices
                .par_iter()
                .map(|&b| config.plan_at(b, n_shards))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The same `(FaultConfig, clock)` yields the identical injection
    /// schedule across 1/4/8 worker threads and across re-derivations —
    /// the purity contract behind faulted-replay determinism.
    #[test]
    fn injection_schedule_is_identical_across_1_4_8_workers_and_reruns(
        seed in 0u64..1_000_000,
        outage_every in 0u32..12,
        outage_batches in 0u32..6,
        solver_node_budget in 0u64..1_000,
        checkpoint_every in 0u32..10,
        n_shards in 1usize..9,
    ) {
        let config = FaultConfig {
            seed,
            outage_every,
            outage_batches,
            solver_node_budget,
            checkpoint_every,
        };
        let reference: Vec<FaultPlan> =
            (0..150).map(|b| config.plan_at(b, n_shards)).collect();
        // Re-derivation on the same thread is exact.
        let again: Vec<FaultPlan> =
            (0..150).map(|b| config.plan_at(b, n_shards)).collect();
        prop_assert_eq!(&again, &reference);
        // And so is batch-parallel derivation under every worker count.
        for threads in [1usize, 4, 8] {
            let parallel = schedule_in_pool(config, n_shards, 150, threads);
            prop_assert_eq!(&parallel, &reference, "{} workers diverged", threads);
        }
    }

    /// The inert default config schedules nothing, ever — the guarantee
    /// that lets every pre-fault pipeline keep its recorded behavior (the
    /// golden pre-change traces are replayed in
    /// `crates/bench/tests/pre_faults_golden.rs`).
    #[test]
    fn default_config_schedules_nothing(
        batch in 0usize..10_000,
        n_shards in 1usize..9,
    ) {
        let config = FaultConfig::default();
        prop_assert!(config.is_inert());
        prop_assert_eq!(config.plan_at(batch, n_shards), FaultPlan::default());
        prop_assert_eq!(config.solver_budget_at(batch), None);
    }
}
