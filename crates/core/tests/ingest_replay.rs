//! The ingested form of the replay invariant.
//!
//! Wall-clock adaptive batching makes the *boundaries* of an ingested run
//! nondeterministic — but a recorded run captures the realized boundaries,
//! and given those the pipeline must replay bit-identically under any
//! worker count.  These tests record ingested runs (monolithic and sharded)
//! once and verify them under 1 and 8 worker threads.

use structride_core::replay::{diff_traces, replay_trace, TraceMeta, TraceRecorder};
use structride_core::shard::region_strips_for;
use structride_core::{
    IngestConfig, IngestError, SardDispatcher, ShardedSimulator, Simulator, StructRideConfig,
};
use structride_datagen::{
    CityProfile, MultiRegionParams, MultiRegionWorkload, Workload, WorkloadParams,
};

fn in_pool<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(op)
}

fn ingest_config() -> IngestConfig {
    IngestConfig {
        max_batch_size: 24,
        batch_deadline: 0.005,
        queue_capacity: 4096,
        // Compress the ~120 s stream into well under a second of wall clock.
        time_scale: 600.0,
    }
}

fn small_workload() -> Workload {
    Workload::generate(WorkloadParams {
        num_requests: 70,
        num_vehicles: 10,
        horizon: 120.0,
        scale: 0.3,
        ..WorkloadParams::small(CityProfile::NycLike)
    })
}

#[test]
fn ingested_run_accounts_for_every_arrival() {
    let w = small_workload();
    let config = StructRideConfig::default().with_ingest(ingest_config());
    let mut sard = SardDispatcher::new(config);
    let report = Simulator::new(config)
        .run_ingested(
            &w.engine,
            w.requests.iter().cloned(),
            w.fresh_vehicles(),
            &mut sard,
            &w.name,
        )
        .expect("healthy producer");
    let stats = &report.ingest;
    assert_eq!(stats.arrivals, w.requests.len());
    assert_eq!(
        stats.dispatched + stats.dropped_queue_full + stats.timed_out,
        stats.arrivals,
        "every arrival is dispatched, load-shed or timed out"
    );
    assert_eq!(report.metrics.total_requests, w.requests.len());
    assert!(report.metrics.served_requests > 0, "some requests served");
    assert!(report.metrics.served_requests <= stats.dispatched);
    assert!(stats.batches > 0);
    assert!(stats.wall_seconds > 0.0);
    assert!(stats.throughput_rps > 0.0);
    assert!(stats.batch_latency_p99_ms >= stats.batch_latency_p50_ms);
    // The size cap was respected.
    assert!(stats.mean_batch_size <= config.ingest.max_batch_size as f64);
}

#[test]
fn recorded_ingested_run_replays_bit_identically_across_worker_counts() {
    let w = small_workload();
    let config = StructRideConfig::default().with_ingest(ingest_config());
    let mut recorder = TraceRecorder::new();
    let mut sard = SardDispatcher::new(config);
    Simulator::new(config)
        .run_ingested_recorded(
            &w.engine,
            w.requests.iter().cloned(),
            w.fresh_vehicles(),
            &mut sard,
            &w.name,
            &mut recorder,
        )
        .expect("healthy producer");
    let trace = recorder.into_trace(TraceMeta::new("SARD", &w.name, config));
    assert!(!trace.batches.is_empty());

    for threads in [1usize, 8] {
        let report = in_pool(threads, || {
            let mut fresh = SardDispatcher::new(config);
            replay_trace(&w.engine, &mut fresh, &trace)
        });
        assert!(
            report.is_clean(),
            "ingested replay drifted under {threads} threads:\n{report}"
        );
        assert_eq!(report.batches_compared, trace.batches.len());
    }

    // The codec handles ingested traces (including the ingest config
    // fields) exactly.
    let text = trace.to_text();
    let parsed = structride_core::Trace::parse(&text).expect("parse ingested trace");
    assert_eq!(parsed, trace);
    assert_eq!(parsed.meta.config.ingest, config.ingest);
}

#[test]
fn sharded_ingested_run_reruns_bit_identically_from_recorded_boundaries() {
    let workload = MultiRegionWorkload::generate(MultiRegionParams {
        requests_per_region: 40,
        vehicles_per_region: 7,
        horizon: 100.0,
        scale: 0.3,
        ..MultiRegionParams::small(vec![CityProfile::ChengduLike, CityProfile::NycLike])
    });
    let config = StructRideConfig::default().with_ingest(ingest_config());
    let regions = region_strips_for(workload.network(), 2);
    let sim = ShardedSimulator::new(config);

    let mut recorder = TraceRecorder::new();
    let ingested = sim
        .run_ingested_recorded(
            workload.network(),
            &regions,
            workload.requests.iter().cloned(),
            workload.fresh_vehicles(),
            |_| Box::new(SardDispatcher::new(config)),
            &workload.name,
            &mut recorder,
        )
        .expect("healthy producer");
    assert!(ingested.report.aggregate.served_requests > 0);
    let trace = recorder.into_trace(TraceMeta::new("SARD", &workload.name, config));
    assert!(!trace.batches.is_empty());

    // The recorded realized boundaries, as the re-run feed.
    let boundaries: Vec<(f64, Vec<structride_model::Request>)> = trace
        .batches
        .iter()
        .map(|b| (b.now, b.requests.clone()))
        .collect();

    for threads in [1usize, 8] {
        let rerun_trace = in_pool(threads, || {
            let mut rec = TraceRecorder::new();
            sim.run_fed_recorded(
                workload.network(),
                &regions,
                &boundaries,
                workload.fresh_vehicles(),
                |_| Box::new(SardDispatcher::new(config)),
                &workload.name,
                &mut rec,
            );
            rec.into_trace(trace.meta.clone())
        });
        let report = diff_traces(&trace, &rerun_trace);
        assert!(
            report.is_clean(),
            "sharded ingested re-run drifted under {threads} threads:\n{report}"
        );
        assert_eq!(report.batches_compared, trace.batches.len());
    }
}

#[test]
fn panicked_producer_surfaces_as_a_structured_error() {
    let w = small_workload();
    let config = StructRideConfig::default().with_ingest(ingest_config());
    let mut sard = SardDispatcher::new(config);
    // A corrupt arrival source: five real requests, then a panic on the
    // producer thread.  This used to cascade — `join().expect(..)`
    // re-panicked the consumer — and must now come back as a structured
    // error carrying the producer's message.
    let poisoned = w
        .requests
        .iter()
        .take(5)
        .cloned()
        .chain(std::iter::once_with(|| -> structride_model::Request {
            panic!("corrupt arrival record")
        }));
    let err = Simulator::new(config)
        .run_ingested(&w.engine, poisoned, w.fresh_vehicles(), &mut sard, &w.name)
        .expect_err("producer panic must surface as an error");
    let IngestError::ProducerPanicked(msg) = err;
    assert!(msg.contains("corrupt arrival record"), "{msg}");
}
