//! Property-based tests of the schedule-maintenance invariants.

use proptest::prelude::*;
use structride_model::insertion::insert_into;
use structride_model::kinetic::optimal_schedule;
use structride_model::{Request, Schedule};
use structride_roadnet::{Point, RoadNetworkBuilder, SpEngine};

/// A 12-node bidirectional line with 10-second hops.
fn line_engine() -> SpEngine {
    let mut b = RoadNetworkBuilder::new();
    for i in 0..12 {
        b.add_node(Point::new(i as f64 * 100.0, 0.0));
    }
    for i in 1..12u32 {
        b.add_bidirectional(i - 1, i, 10.0).unwrap();
    }
    SpEngine::new(b.build().unwrap())
}

fn build_request(engine: &SpEngine, id: u32, raw: (u32, u32, f64, f64)) -> Option<Request> {
    let n = engine.node_count() as u32;
    let (s, e, release, gamma_extra) = raw;
    let source = s % n;
    let destination = e % n;
    if source == destination {
        return None;
    }
    let cost = engine.cost(source, destination);
    Some(Request::with_detour(
        id,
        source,
        destination,
        1,
        release,
        cost,
        1.0 + gamma_extra,
        300.0,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Linear insertion, applied greedily in any order, never produces an
    /// infeasible or malformed schedule, and never beats the kinetic-tree
    /// optimum over the same served set.
    #[test]
    fn linear_insertion_is_feasible_and_never_beats_kinetic(
        raw in proptest::collection::vec((0u32..100, 0u32..100, 0.0f64..30.0, 0.2f64..1.2), 1..5),
        start in 0u32..12,
        capacity in 1u32..5,
    ) {
        let engine = line_engine();
        let requests: Vec<Request> = raw
            .iter()
            .enumerate()
            .filter_map(|(i, r)| build_request(&engine, i as u32, *r))
            .collect();
        prop_assume!(!requests.is_empty());

        let mut schedule = Schedule::new();
        let mut inserted: Vec<&Request> = Vec::new();
        for r in &requests {
            if let Some(out) = insert_into(&engine, start, 0.0, 0, capacity, &schedule, r) {
                // The outcome accounting is consistent.
                let eval = out.schedule.evaluate(&engine, start, 0.0, 0, capacity);
                prop_assert!(eval.feasible);
                prop_assert!(out.schedule.is_well_formed());
                prop_assert!((eval.travel_cost - out.new_travel_cost).abs() < 1e-6);
                prop_assert!(out.added_cost >= -1e-9);
                schedule = out.schedule;
                inserted.push(r);
            }
        }
        prop_assume!(!inserted.is_empty());
        let linear_cost = schedule.evaluate(&engine, start, 0.0, 0, capacity).travel_cost;
        // The kinetic tree over the same request set is exact, so it can only
        // be at least as good.
        if let Some((best, optimal_cost)) =
            optimal_schedule(&engine, start, 0.0, 0, capacity, &inserted)
        {
            prop_assert!(best.is_well_formed());
            prop_assert!(optimal_cost <= linear_cost + 1e-6);
        }
    }

    /// Buffer times are exact: for a feasible schedule, `buf[0]` is
    /// precisely the largest extra departure delay that keeps every deadline
    /// satisfiable — delaying by `buf[0]` stays feasible, delaying by any
    /// visible margin more does not (waiting absorption included).
    #[test]
    fn buffer_times_bound_the_tolerable_delay(
        raw in proptest::collection::vec((0u32..100, 0u32..100, 0.0f64..20.0, 0.3f64..1.5), 1..4),
        start in 0u32..12,
    ) {
        let engine = line_engine();
        let requests: Vec<Request> = raw
            .iter()
            .enumerate()
            .filter_map(|(i, r)| build_request(&engine, i as u32, *r))
            .collect();
        prop_assume!(!requests.is_empty());
        let mut schedule = Schedule::new();
        for r in &requests {
            if let Some(out) = insert_into(&engine, start, 0.0, 0, 4, &schedule, r) {
                schedule = out.schedule;
            }
        }
        prop_assume!(!schedule.is_empty());
        let eval = schedule.evaluate(&engine, start, 0.0, 0, 4);
        prop_assert!(eval.feasible);
        let buffers = schedule.buffer_times(&eval);
        prop_assert_eq!(buffers.len(), schedule.len());
        for (x, b) in buffers.iter().enumerate() {
            // Never negative (modulo the feasibility tolerance), and at least
            // the waiting already present at the way-point.
            prop_assert!(*b >= -1e-7);
            prop_assert!(*b + 1e-9 >= eval.waiting[x]);
        }
        // Monotone once each way-point's own absorbed waiting is taken out:
        // buf[x] − wait(x) = min(slack(x), buf[x+1]) ≤ buf[x+1].
        for (x, w) in buffers.windows(2).enumerate() {
            prop_assert!(w[0] - eval.waiting[x] <= w[1] + 1e-9);
        }
        // Delaying departure by exactly buf[0] keeps every deadline…
        let delay = buffers[0].max(0.0);
        let delayed = schedule.evaluate(&engine, start, delay, 0, 4);
        prop_assert!(delayed.feasible, "delay {delay} broke the schedule");
        // …and the bound is tight: any visible margin beyond it breaks one.
        let broken = schedule.evaluate(&engine, start, delay + 1e-3, 0, 4);
        prop_assert!(!broken.feasible, "delay {delay} + 1e-3 should violate a deadline");
    }
}
