//! Ridesharing data model for the StructRide reproduction (§II of the paper).
//!
//! This crate defines the objects every dispatcher manipulates:
//!
//! * [`Request`] — a rider request `⟨s, e, n, t, d⟩` with its detour-based
//!   delivery deadline and pickup (waiting-time) deadline (Definition 1);
//! * [`Vehicle`] — a vehicle with capacity, current position/time, onboard
//!   riders and its planned [`Schedule`];
//! * [`Schedule`] / [`Waypoint`] — an ordered sequence of pickup/drop-off
//!   way-points together with the coverage / order / capacity / deadline
//!   feasibility rules and buffer times (Definitions 2–3);
//! * [`insertion`] — the linear insertion operator (Tong et al.) that places a
//!   new request into an existing schedule without reordering it;
//! * [`kinetic`] — the kinetic-tree alternative that maintains *all* feasible
//!   orderings and therefore yields the exact optimal schedule (used as the
//!   optimality oracle in tests and as an optional scheduling backend);
//! * [`cost`] — the unified cost function `U` of Equation (3).

pub mod cost;
pub mod insertion;
pub mod kinetic;
pub mod request;
pub mod schedule;
pub mod vehicle;

pub use cost::{unified_cost, CostParams};
pub use insertion::{insert_request, InsertionOutcome};
pub use kinetic::KineticTree;
pub use request::{Request, RequestId};
pub use schedule::{Schedule, ScheduleEval, Waypoint, WaypointKind};
pub use vehicle::{Vehicle, VehicleId};
