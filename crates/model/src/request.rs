//! Ridesharing requests (Definition 1 of the paper).
//!
//! A request `r_i = ⟨s_i, e_i, n_i, t_i, d_i⟩` asks for `n_i` riders to travel
//! from source `s_i` to destination `e_i`, is released at time `t_i` and must
//! reach the destination by the delivery deadline `d_i`.  Following the paper
//! (and [40], [31], [34]) the deadline is derived from a detour-tolerance
//! parameter `γ > 1` as `d_i = t_i + γ · cost(s_i, e_i)`, and the pickup must
//! additionally happen within the maximum waiting time
//! `w_i = min(5 min, d_i − cost(s_i, e_i) − t_i)`.

use serde::{Deserialize, Serialize};
use structride_roadnet::NodeId;

/// Identifier of a request.
pub type RequestId = u32;

/// Default maximum waiting time before pickup, in seconds (5 minutes, per the
/// paper's experimental settings which follow Santi et al. [23]).
pub const DEFAULT_MAX_WAIT: f64 = 300.0;

/// A ridesharing request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique identifier.
    pub id: RequestId,
    /// Source (pickup) road-network node `s_i`.
    pub source: NodeId,
    /// Destination (drop-off) road-network node `e_i`.
    pub destination: NodeId,
    /// Number of riders `n_i`.
    pub riders: u32,
    /// Release time `t_i` (seconds since the start of the horizon).
    pub release: f64,
    /// Delivery deadline `d_i`.
    pub deadline: f64,
    /// Latest feasible pickup time (`t_i + w_i`).
    pub pickup_deadline: f64,
    /// Shortest travel time `cost(s_i, e_i)`, cached at creation because every
    /// algorithm and the unified cost function reuse it constantly.
    pub shortest_cost: f64,
}

impl Request {
    /// Creates a request from explicit deadlines.
    ///
    /// Most callers should prefer [`Request::with_detour`], which derives the
    /// deadlines from the detour parameter `γ` exactly as the paper does.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: RequestId,
        source: NodeId,
        destination: NodeId,
        riders: u32,
        release: f64,
        deadline: f64,
        pickup_deadline: f64,
        shortest_cost: f64,
    ) -> Self {
        Request {
            id,
            source,
            destination,
            riders,
            release,
            deadline,
            pickup_deadline,
            shortest_cost,
        }
    }

    /// Creates a request whose deadlines follow the paper's configuration:
    /// `d = t + γ · cost(s, e)` and `pickup deadline = t + min(max_wait, d − cost − t)`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_detour(
        id: RequestId,
        source: NodeId,
        destination: NodeId,
        riders: u32,
        release: f64,
        shortest_cost: f64,
        gamma: f64,
        max_wait: f64,
    ) -> Self {
        debug_assert!(gamma >= 1.0, "detour parameter must be at least 1");
        let deadline = release + gamma * shortest_cost;
        let slack = (deadline - shortest_cost - release).max(0.0);
        let pickup_deadline = release + slack.min(max_wait);
        Request {
            id,
            source,
            destination,
            riders,
            release,
            deadline,
            pickup_deadline,
            shortest_cost,
        }
    }

    /// The direct (no-sharing) travel cost of this request, `cost(r)` in the
    /// paper's notation.
    pub fn direct_cost(&self) -> f64 {
        self.shortest_cost
    }

    /// Maximum allowed detour beyond the direct travel time.
    pub fn detour_budget(&self) -> f64 {
        (self.deadline - self.release - self.shortest_cost).max(0.0)
    }

    /// True if the request can no longer be started at time `now` (its pickup
    /// deadline has passed), so it must be rejected / counted as expired.
    pub fn is_expired(&self, now: f64) -> bool {
        now > self.pickup_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_detour_matches_paper_formula() {
        // cost = 600s, gamma = 1.5 -> deadline = release + 900, slack = 300.
        let r = Request::with_detour(1, 10, 20, 2, 100.0, 600.0, 1.5, DEFAULT_MAX_WAIT);
        assert_eq!(r.deadline, 100.0 + 1.5 * 600.0);
        assert_eq!(r.detour_budget(), 300.0);
        // slack (300) == max wait (300) -> pickup deadline = release + 300.
        assert_eq!(r.pickup_deadline, 400.0);
    }

    #[test]
    fn pickup_deadline_capped_by_max_wait() {
        // Long trip with generous gamma: slack (1000) > max wait (300).
        let r = Request::with_detour(1, 0, 1, 1, 0.0, 1000.0, 2.0, 300.0);
        assert_eq!(r.deadline, 2000.0);
        assert_eq!(r.pickup_deadline, 300.0);
    }

    #[test]
    fn pickup_deadline_capped_by_slack() {
        // Short trip, tight gamma: slack (20) < max wait (300).
        let r = Request::with_detour(1, 0, 1, 1, 50.0, 100.0, 1.2, 300.0);
        assert!((r.deadline - 170.0).abs() < 1e-9);
        assert!((r.pickup_deadline - 70.0).abs() < 1e-9);
    }

    #[test]
    fn expiry_uses_pickup_deadline() {
        let r = Request::with_detour(1, 0, 1, 1, 0.0, 100.0, 1.5, 300.0);
        assert!(!r.is_expired(r.pickup_deadline));
        assert!(r.is_expired(r.pickup_deadline + 1.0));
    }

    #[test]
    fn direct_cost_is_shortest_cost() {
        let r = Request::with_detour(3, 4, 5, 1, 0.0, 42.0, 1.5, 300.0);
        assert_eq!(r.direct_cost(), 42.0);
    }
}
