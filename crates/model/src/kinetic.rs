//! Kinetic-tree schedule maintenance (Huang et al. [7], discussed in §IV-A).
//!
//! The kinetic tree keeps **every** feasible way-point ordering for a vehicle
//! instead of a single one, so inserting a new request explores all orderings
//! and the minimum-cost schedule is always exact.  The paper chooses linear
//! insertion for StructRide because the kinetic tree can hold up to
//! `(2m)!/2^m` schedules; we implement it anyway because it is (a) one of the
//! two schedule-maintenance strategies the paper discusses, and (b) the exact
//! optimality oracle against which the linear-insertion and degree-reordering
//! heuristics are measured (the 85 %–91 % optimality probabilities of §IV-A).

use crate::request::Request;
use crate::schedule::{Schedule, ScheduleEval, Waypoint};
use structride_roadnet::{NodeId, SpEngine};

/// All feasible schedules of one vehicle, refreshed on every insertion.
#[derive(Debug, Clone)]
pub struct KineticTree {
    start_node: NodeId,
    start_time: f64,
    onboard: u32,
    capacity: u32,
    /// Every feasible ordering currently known, with its evaluation.
    schedules: Vec<(Schedule, ScheduleEval)>,
}

impl KineticTree {
    /// Creates a kinetic tree for a vehicle standing at `start_node`, free at
    /// `start_time`, with `onboard` riders and `capacity` seats.
    pub fn new(start_node: NodeId, start_time: f64, onboard: u32, capacity: u32) -> Self {
        KineticTree {
            start_node,
            start_time,
            onboard,
            capacity,
            schedules: vec![(
                Schedule::new(),
                ScheduleEval {
                    feasible: true,
                    violated_at: None,
                    service_times: Vec::new(),
                    waiting: Vec::new(),
                    travel_cost: 0.0,
                    completion_time: start_time,
                    max_onboard: onboard,
                },
            )],
        }
    }

    /// Seeds the tree from an already-planned schedule (it becomes the only
    /// ordering; subsequent insertions branch from it).
    pub fn from_schedule(
        engine: &SpEngine,
        start_node: NodeId,
        start_time: f64,
        onboard: u32,
        capacity: u32,
        schedule: Schedule,
    ) -> Option<Self> {
        let eval = schedule.evaluate(engine, start_node, start_time, onboard, capacity);
        if !eval.feasible {
            return None;
        }
        Some(KineticTree {
            start_node,
            start_time,
            onboard,
            capacity,
            schedules: vec![(schedule, eval)],
        })
    }

    /// Number of feasible orderings currently maintained.
    pub fn size(&self) -> usize {
        self.schedules.len()
    }

    /// Inserts a request, regenerating every feasible ordering that extends an
    /// existing one with the new pickup/drop-off pair (in any positions).
    ///
    /// Returns `true` if at least one feasible ordering remains; on `false`
    /// the tree is left unchanged.
    pub fn insert(&mut self, engine: &SpEngine, request: &Request) -> bool {
        if request.riders > self.capacity {
            return false;
        }
        let pickup = Waypoint::pickup(request);
        let dropoff = Waypoint::dropoff(request);
        let mut next: Vec<(Schedule, ScheduleEval)> = Vec::new();
        for (sched, _) in &self.schedules {
            let n = sched.len();
            for i in 0..=n {
                for j in i..=n {
                    let mut wps = Vec::with_capacity(n + 2);
                    wps.extend_from_slice(&sched.waypoints()[..i]);
                    wps.push(pickup);
                    wps.extend_from_slice(&sched.waypoints()[i..j]);
                    wps.push(dropoff);
                    wps.extend_from_slice(&sched.waypoints()[j..]);
                    let cand = Schedule::from_waypoints(wps);
                    let eval = cand.evaluate(
                        engine,
                        self.start_node,
                        self.start_time,
                        self.onboard,
                        self.capacity,
                    );
                    if eval.feasible {
                        next.push((cand, eval));
                    }
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        self.schedules = next;
        true
    }

    /// The minimum-travel-cost feasible ordering, if any requests were added.
    pub fn best(&self) -> Option<(&Schedule, f64)> {
        self.schedules
            .iter()
            .filter(|(s, _)| !s.is_empty())
            .min_by(|a, b| {
                a.1.travel_cost
                    .partial_cmp(&b.1.travel_cost)
                    .expect("finite costs")
            })
            .map(|(s, e)| (s, e.travel_cost))
    }

    /// Travel cost of the best ordering (infinity if none).
    pub fn best_cost(&self) -> f64 {
        self.best().map(|(_, c)| c).unwrap_or(f64::INFINITY)
    }
}

/// Exhaustively computes the optimal schedule serving exactly `requests` from
/// the given vehicle state (a convenience wrapper that feeds a fresh kinetic
/// tree).  Returns the best schedule and its travel cost.
pub fn optimal_schedule(
    engine: &SpEngine,
    start_node: NodeId,
    start_time: f64,
    onboard: u32,
    capacity: u32,
    requests: &[&Request],
) -> Option<(Schedule, f64)> {
    let mut tree = KineticTree::new(start_node, start_time, onboard, capacity);
    for r in requests {
        if !tree.insert(engine, r) {
            return None;
        }
    }
    tree.best().map(|(s, c)| (s.clone(), c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::insert_into;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    fn line_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..6 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..6u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn req(id: u32, s: NodeId, e: NodeId, cost: f64, gamma: f64) -> Request {
        Request::with_detour(id, s, e, 1, 0.0, cost, gamma, 300.0)
    }

    #[test]
    fn single_request_best_is_direct() {
        let engine = line_engine();
        let r = req(1, 1, 3, 20.0, 2.0);
        let best = optimal_schedule(&engine, 0, 0.0, 0, 4, &[&r]).unwrap();
        assert_eq!(best.1, 30.0); // deadhead + trip
        assert!(best.0.is_well_formed());
    }

    #[test]
    fn kinetic_tree_never_worse_than_linear_insertion() {
        let engine = line_engine();
        let r1 = req(1, 0, 5, 50.0, 1.8);
        let r2 = req(2, 1, 4, 30.0, 1.8);
        let r3 = req(3, 2, 3, 10.0, 4.0);
        // Linear insertion in release order.
        let mut sched = Schedule::new();
        for r in [&r1, &r2, &r3] {
            if let Some(out) = insert_into(&engine, 0, 0.0, 0, 6, &sched, r) {
                sched = out.schedule;
            }
        }
        let linear_cost = sched.evaluate(&engine, 0, 0.0, 0, 6).travel_cost;
        let best = optimal_schedule(&engine, 0, 0.0, 0, 6, &[&r1, &r2, &r3]).unwrap();
        assert!(best.1 <= linear_cost + 1e-9);
    }

    #[test]
    fn insertion_failure_leaves_tree_unchanged() {
        let engine = line_engine();
        let mut tree = KineticTree::new(0, 0.0, 0, 4);
        let r1 = req(1, 0, 2, 20.0, 1.5);
        assert!(tree.insert(&engine, &r1));
        let size_before = tree.size();
        // Impossible request (more riders than seats).
        let heavy = Request::with_detour(2, 1, 3, 9, 0.0, 20.0, 1.5, 300.0);
        assert!(!tree.insert(&engine, &heavy));
        assert_eq!(tree.size(), size_before);
        assert!(tree.best_cost().is_finite());
    }

    #[test]
    fn tree_size_grows_with_orderings() {
        let engine = line_engine();
        let mut tree = KineticTree::new(0, 0.0, 0, 6);
        let r1 = req(1, 0, 5, 50.0, 2.0);
        let r2 = req(2, 1, 4, 30.0, 2.0);
        assert!(tree.insert(&engine, &r1));
        assert_eq!(tree.size(), 1);
        assert!(tree.insert(&engine, &r2));
        // At least the two classic interleavings survive.
        assert!(tree.size() >= 2);
    }

    #[test]
    fn from_schedule_rejects_infeasible_seed() {
        let engine = line_engine();
        let r = req(1, 0, 2, 20.0, 1.1);
        let sched = Schedule::direct(&r);
        // Starting from node 5 the pickup deadline cannot be met.
        assert!(KineticTree::from_schedule(&engine, 5, 0.0, 0, 4, sched.clone()).is_none());
        assert!(KineticTree::from_schedule(&engine, 0, 0.0, 0, 4, sched).is_some());
    }

    #[test]
    fn empty_tree_has_no_best() {
        let tree = KineticTree::new(0, 0.0, 0, 4);
        assert!(tree.best().is_none());
        assert!(tree.best_cost().is_infinite());
    }
}
