//! The unified cost function of Equation (3).
//!
//! `U(W, P) = α · Σ_w µ(w, G_w) + Σ_{G ∈ G⁻} p_i`, where `µ` is the total
//! travel cost of the planned schedules and the penalty of an unassigned
//! group is `p_i = p_r · Σ_{r ∈ G_i} cost(r.s, r.e)`.  By choosing `α` and
//! `p_r` this supports all of the paper's optimisation objectives (minimum
//! travel cost, maximum service rate, maximum revenue); the paper fixes
//! `α = 1` and sweeps `p_r` in Fig. 12.

use serde::{Deserialize, Serialize};

/// Parameters of the unified cost function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Weight `α` on the total travel cost (the paper fixes it to 1).
    pub alpha: f64,
    /// Penalty coefficient `p_r` applied to the direct cost of every
    /// unserved request.
    pub penalty_coefficient: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Defaults from Table III: α = 1, p_r = 10.
        CostParams {
            alpha: 1.0,
            penalty_coefficient: 10.0,
        }
    }
}

impl CostParams {
    /// Creates cost parameters with `α = 1` and the given penalty coefficient.
    pub fn with_penalty(penalty_coefficient: f64) -> Self {
        CostParams {
            alpha: 1.0,
            penalty_coefficient,
        }
    }

    /// The penalty incurred by leaving a request with direct cost
    /// `direct_cost` unserved.
    pub fn penalty_for(&self, direct_cost: f64) -> f64 {
        self.penalty_coefficient * direct_cost
    }
}

/// Evaluates the unified cost `U` given the total travel cost of all planned
/// schedules and the summed direct cost of all unserved requests.
pub fn unified_cost(params: &CostParams, total_travel: f64, unserved_direct_cost: f64) -> f64 {
    params.alpha * total_travel + params.penalty_coefficient * unserved_direct_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let p = CostParams::default();
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.penalty_coefficient, 10.0);
    }

    #[test]
    fn unified_cost_combines_travel_and_penalty() {
        let p = CostParams::with_penalty(5.0);
        // 100 seconds of driving + 40 seconds of unserved direct cost.
        assert_eq!(unified_cost(&p, 100.0, 40.0), 100.0 + 5.0 * 40.0);
        assert_eq!(p.penalty_for(40.0), 200.0);
    }

    #[test]
    fn zero_penalty_reduces_to_travel_cost() {
        let p = CostParams::with_penalty(0.0);
        assert_eq!(unified_cost(&p, 77.0, 1234.0), 77.0);
    }

    #[test]
    fn alpha_scales_travel_term() {
        let p = CostParams {
            alpha: 2.0,
            penalty_coefficient: 1.0,
        };
        assert_eq!(unified_cost(&p, 10.0, 3.0), 23.0);
    }
}
