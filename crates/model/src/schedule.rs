//! Vehicle schedules and their feasibility rules (Definitions 2 and 3).
//!
//! A [`Schedule`] is an ordered sequence of [`Waypoint`]s — the pickup and
//! drop-off locations of the requests assigned to one vehicle.  A schedule is
//! feasible iff it satisfies the four constraints of Definition 2 (coverage,
//! order, capacity, deadline); [`Schedule::evaluate`] walks the sequence,
//! computes arrival times and total travel cost and reports the first
//! violation, and [`Schedule::buffer_times`] computes the maximum detour slack
//! of Definition 3 that the linear-insertion operator uses for pruning.

use crate::request::{Request, RequestId};
use serde::{Deserialize, Serialize};
use structride_roadnet::{NodeId, SpEngine};

/// Numerical tolerance for deadline comparisons (seconds).
pub const TIME_EPS: f64 = 1e-7;

/// Whether a way-point picks riders up or drops them off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaypointKind {
    /// The source of a request: riders board here.
    Pickup,
    /// The destination of a request: riders alight here.
    Dropoff,
}

/// One stop of a vehicle schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// The request served at this stop.
    pub request: RequestId,
    /// Road-network node of the stop.
    pub node: NodeId,
    /// Pickup or drop-off.
    pub kind: WaypointKind,
    /// `ddl(o_x)`: latest feasible service time at this stop.
    pub deadline: f64,
    /// Earliest feasible service time (the request release for pickups,
    /// 0 for drop-offs — a drop-off can never happen "too early").
    pub earliest: f64,
    /// Number of riders boarding (pickup) or alighting (drop-off).
    pub riders: u32,
}

impl Waypoint {
    /// The pickup way-point of a request.
    pub fn pickup(r: &Request) -> Self {
        Waypoint {
            request: r.id,
            node: r.source,
            kind: WaypointKind::Pickup,
            deadline: r.pickup_deadline,
            earliest: r.release,
            riders: r.riders,
        }
    }

    /// The drop-off way-point of a request.
    pub fn dropoff(r: &Request) -> Self {
        Waypoint {
            request: r.id,
            node: r.destination,
            kind: WaypointKind::Dropoff,
            deadline: r.deadline,
            earliest: 0.0,
            riders: r.riders,
        }
    }

    /// True if this is a pickup.
    pub fn is_pickup(&self) -> bool {
        self.kind == WaypointKind::Pickup
    }
}

/// The outcome of evaluating a schedule from a concrete vehicle state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEval {
    /// True if every constraint holds.
    pub feasible: bool,
    /// Index of the first way-point where a constraint is violated, if any.
    pub violated_at: Option<usize>,
    /// Service time at each way-point (arrival plus any waiting for release).
    pub service_times: Vec<f64>,
    /// Waiting time at each way-point (service minus arrival; positive only
    /// at pickups the vehicle reaches before the request release).
    pub waiting: Vec<f64>,
    /// Total driving time over the schedule (waiting excluded).
    pub travel_cost: f64,
    /// Time at which the last way-point is served (equals the start time for
    /// an empty schedule).
    pub completion_time: f64,
    /// Maximum onboard riders observed along the schedule.
    pub max_onboard: u32,
}

impl ScheduleEval {
    fn infeasible_at(idx: usize) -> Self {
        ScheduleEval {
            feasible: false,
            violated_at: Some(idx),
            service_times: Vec::new(),
            waiting: Vec::new(),
            travel_cost: f64::INFINITY,
            completion_time: f64::INFINITY,
            max_onboard: 0,
        }
    }
}

/// An ordered sequence of way-points planned for one vehicle.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    waypoints: Vec<Waypoint>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule {
            waypoints: Vec::new(),
        }
    }

    /// Builds a schedule from way-points (validity is *not* checked here; use
    /// [`Schedule::is_well_formed`] / [`Schedule::evaluate`]).
    pub fn from_waypoints(waypoints: Vec<Waypoint>) -> Self {
        Schedule { waypoints }
    }

    /// The schedule serving a single request directly: `⟨s, e⟩`.
    pub fn direct(r: &Request) -> Self {
        Schedule {
            waypoints: vec![Waypoint::pickup(r), Waypoint::dropoff(r)],
        }
    }

    /// Number of way-points.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// True if the schedule has no way-points.
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// The way-points in order.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// Iterator over the way-points.
    pub fn iter(&self) -> impl Iterator<Item = &Waypoint> {
        self.waypoints.iter()
    }

    /// Appends a way-point at the end.
    pub fn push(&mut self, wp: Waypoint) {
        self.waypoints.push(wp);
    }

    /// Inserts a way-point at `pos`.
    pub fn insert(&mut self, pos: usize, wp: Waypoint) {
        self.waypoints.insert(pos, wp);
    }

    /// Distinct requests appearing in the schedule.
    pub fn request_ids(&self) -> Vec<RequestId> {
        let mut ids: Vec<RequestId> = self.waypoints.iter().map(|w| w.request).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// True if the request appears in the schedule.
    pub fn contains_request(&self, id: RequestId) -> bool {
        self.waypoints.iter().any(|w| w.request == id)
    }

    /// Structural validity: the coverage and order constraints of Definition 2
    /// (every request has exactly one pickup and one drop-off, pickup first).
    pub fn is_well_formed(&self) -> bool {
        use std::collections::HashMap;
        let mut state: HashMap<RequestId, u8> = HashMap::new();
        for wp in &self.waypoints {
            let entry = state.entry(wp.request).or_insert(0);
            match wp.kind {
                WaypointKind::Pickup => {
                    if *entry != 0 {
                        return false;
                    }
                    *entry = 1;
                }
                WaypointKind::Dropoff => {
                    if *entry != 1 {
                        return false;
                    }
                    *entry = 2;
                }
            }
        }
        state.values().all(|&v| v == 2)
    }

    /// Evaluates the schedule starting from a vehicle at `start_node`, free at
    /// `start_time`, with `initial_onboard` riders already in the car and a
    /// total capacity of `capacity` seats.
    ///
    /// The walk accumulates travel cost edge by edge; a vehicle arriving at a
    /// pickup before the request release waits (waiting does not count as
    /// travel cost but does delay subsequent way-points).  The first capacity
    /// or deadline violation makes the result infeasible.
    pub fn evaluate(
        &self,
        engine: &SpEngine,
        start_node: NodeId,
        start_time: f64,
        initial_onboard: u32,
        capacity: u32,
    ) -> ScheduleEval {
        let mut service_times = Vec::with_capacity(self.waypoints.len());
        let mut waiting = Vec::with_capacity(self.waypoints.len());
        let mut travel = 0.0;
        let mut now = start_time;
        let mut node = start_node;
        let mut onboard = initial_onboard;
        let mut max_onboard = initial_onboard;

        for (idx, wp) in self.waypoints.iter().enumerate() {
            let leg = engine.cost(node, wp.node);
            if !leg.is_finite() {
                return ScheduleEval::infeasible_at(idx);
            }
            travel += leg;
            let arrive = now + leg;
            let service = arrive.max(wp.earliest);
            if service > wp.deadline + TIME_EPS {
                return ScheduleEval::infeasible_at(idx);
            }
            match wp.kind {
                WaypointKind::Pickup => {
                    onboard += wp.riders;
                    if onboard > capacity {
                        return ScheduleEval::infeasible_at(idx);
                    }
                    max_onboard = max_onboard.max(onboard);
                }
                WaypointKind::Dropoff => {
                    onboard = onboard.saturating_sub(wp.riders);
                }
            }
            service_times.push(service);
            waiting.push(service - arrive);
            now = service;
            node = wp.node;
        }

        ScheduleEval {
            feasible: true,
            violated_at: None,
            completion_time: now,
            service_times,
            waiting,
            travel_cost: travel,
            max_onboard,
        }
    }

    /// Buffer times of Definition 3, extended with waiting absorption:
    /// `buf[x]` is the maximum extra *arrival delay* at way-point `o_x` that
    /// keeps every deadline from `o_x` onwards satisfiable.
    ///
    /// A way-point whose base service waits for a release
    /// (`service > arrival`) absorbs delay before any of it propagates to
    /// later way-points, so the recursion adds the waiting at each step:
    ///
    /// ```text
    /// buf[n-1] = slack(n-1) + wait(n-1)
    /// buf[x]   = min(slack(x), buf[x+1]) + wait(x)
    /// ```
    ///
    /// where `slack(x) = ddl(o_x) − service(o_x)` and
    /// `wait(x) = service(o_x) − arrival(o_x)`.  This is exact: a delay `d`
    /// in the arrival at `o_x` is feasible for `o_x..` iff `d ≤ buf[x]`
    /// (delays up to `wait(x)` vanish entirely; beyond that the remainder
    /// must fit both `o_x`'s own slack and the downstream buffer).  Requires
    /// a feasible evaluation of this schedule.
    pub fn buffer_times(&self, eval: &ScheduleEval) -> Vec<f64> {
        debug_assert!(eval.feasible);
        let n = self.waypoints.len();
        let mut buf = vec![0.0; n];
        if n == 0 {
            return buf;
        }
        let slack = |x: usize| self.waypoints[x].deadline - eval.service_times[x];
        buf[n - 1] = slack(n - 1) + eval.waiting[n - 1];
        for x in (0..n - 1).rev() {
            buf[x] = slack(x).min(buf[x + 1]) + eval.waiting[x];
        }
        buf
    }

    /// Approximate heap footprint in bytes (used by the Fig. 14 accounting).
    pub fn approx_bytes(&self) -> usize {
        self.waypoints.capacity() * std::mem::size_of::<Waypoint>()
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, wp) in self.waypoints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let tag = if wp.is_pickup() { "s" } else { "e" };
            write!(f, "{}{}", tag, wp.request)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    /// A simple 4-node line: 0 -10s- 1 -10s- 2 -10s- 3.
    fn line_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..4u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn request(
        id: RequestId,
        s: NodeId,
        e: NodeId,
        release: f64,
        cost: f64,
        gamma: f64,
    ) -> Request {
        Request::with_detour(id, s, e, 1, release, cost, gamma, 300.0)
    }

    #[test]
    fn direct_schedule_is_well_formed_and_feasible() {
        let engine = line_engine();
        let r = request(1, 0, 2, 0.0, 20.0, 1.5);
        let s = Schedule::direct(&r);
        assert!(s.is_well_formed());
        let eval = s.evaluate(&engine, 0, 0.0, 0, 4);
        assert!(eval.feasible);
        assert_eq!(eval.travel_cost, 20.0);
        assert_eq!(eval.completion_time, 20.0);
        assert_eq!(eval.max_onboard, 1);
        assert_eq!(s.to_string(), "⟨s1, e1⟩");
    }

    #[test]
    fn order_and_coverage_violations_detected() {
        let r = request(1, 0, 2, 0.0, 20.0, 1.5);
        // Drop-off before pickup.
        let bad = Schedule::from_waypoints(vec![Waypoint::dropoff(&r), Waypoint::pickup(&r)]);
        assert!(!bad.is_well_formed());
        // Missing drop-off.
        let partial = Schedule::from_waypoints(vec![Waypoint::pickup(&r)]);
        assert!(!partial.is_well_formed());
        // Duplicate pickup.
        let dup = Schedule::from_waypoints(vec![
            Waypoint::pickup(&r),
            Waypoint::pickup(&r),
            Waypoint::dropoff(&r),
        ]);
        assert!(!dup.is_well_formed());
    }

    #[test]
    fn capacity_violation_detected() {
        let engine = line_engine();
        let r1 = Request::with_detour(1, 0, 3, 3, 0.0, 30.0, 2.0, 300.0);
        let r2 = Request::with_detour(2, 1, 3, 2, 0.0, 20.0, 2.0, 300.0);
        let s = Schedule::from_waypoints(vec![
            Waypoint::pickup(&r1),
            Waypoint::pickup(&r2),
            Waypoint::dropoff(&r1),
            Waypoint::dropoff(&r2),
        ]);
        // Capacity 4 cannot hold 3 + 2 riders.
        let eval = s.evaluate(&engine, 0, 0.0, 0, 4);
        assert!(!eval.feasible);
        assert_eq!(eval.violated_at, Some(1));
        // Capacity 5 can.
        let eval = s.evaluate(&engine, 0, 0.0, 0, 5);
        assert!(eval.feasible);
        assert_eq!(eval.max_onboard, 5);
    }

    #[test]
    fn deadline_violation_detected() {
        let engine = line_engine();
        // Tight deadline: cost 20, gamma 1.05 -> deadline = 21, but starting
        // from node 3 the vehicle needs 30s just to reach the pickup at 0.
        let r = request(1, 0, 2, 0.0, 20.0, 1.05);
        let s = Schedule::direct(&r);
        let eval = s.evaluate(&engine, 3, 0.0, 0, 4);
        assert!(!eval.feasible);
        assert_eq!(eval.violated_at, Some(0));
    }

    #[test]
    fn vehicle_waits_for_release() {
        let engine = line_engine();
        let r = request(1, 1, 2, 100.0, 10.0, 2.0);
        let s = Schedule::direct(&r);
        // Vehicle is adjacent and free at t=0: it arrives at the pickup at t=10
        // but must wait until the release at t=100.
        let eval = s.evaluate(&engine, 0, 0.0, 0, 4);
        assert!(eval.feasible);
        assert_eq!(eval.service_times, vec![100.0, 110.0]);
        // Waiting is not travel.
        assert_eq!(eval.travel_cost, 20.0);
    }

    #[test]
    fn buffer_times_match_definition() {
        let engine = line_engine();
        let r1 = request(1, 0, 3, 0.0, 30.0, 2.0); // deadline 60
        let r2 = request(2, 1, 2, 0.0, 10.0, 3.0); // deadline 30
        let s = Schedule::from_waypoints(vec![
            Waypoint::pickup(&r1),
            Waypoint::pickup(&r2),
            Waypoint::dropoff(&r2),
            Waypoint::dropoff(&r1),
        ]);
        let eval = s.evaluate(&engine, 0, 0.0, 0, 4);
        assert!(eval.feasible);
        // service times: 0, 10, 20, 30; deadlines: pickup1=300cap? pickup ddl
        // is release+min(wait, slack): r1 slack=30 -> 30; r2 slack=20 -> 20.
        // dropoff ddls: 60 and 30.
        let buf = s.buffer_times(&eval);
        // No waiting anywhere, so buf[x] = min slack over way-points x..:
        // slacks are [30, 10, 10, 30] -> buf[3] = 30; buf[2] = min(10, 30);
        // buf[1] = min(10, 10); buf[0] = min(30, 10).
        assert_eq!(buf, vec![10.0, 10.0, 10.0, 30.0]);
    }

    #[test]
    fn buffer_times_absorb_downstream_waiting() {
        let engine = line_engine();
        // r released at t=100: the vehicle arrives at the pickup at t=10 and
        // waits 90 s.  That waiting absorbs up to 90 s of upstream delay
        // before any deadline from the pickup onwards is threatened.
        let r = request(1, 1, 2, 100.0, 10.0, 2.0);
        let s = Schedule::direct(&r);
        let eval = s.evaluate(&engine, 0, 0.0, 0, 4);
        assert!(eval.feasible);
        assert_eq!(eval.waiting, vec![90.0, 0.0]);
        let buf = s.buffer_times(&eval);
        // Slacks: pickup ddl−service, drop-off ddl−service; the pickup's
        // buffer additionally gains the 90 s of absorbed waiting.
        let pickup_slack = s.waypoints()[0].deadline - 100.0;
        let dropoff_slack = s.waypoints()[1].deadline - 110.0;
        assert_eq!(buf[1], dropoff_slack);
        assert_eq!(buf[0], pickup_slack.min(buf[1]) + 90.0);
        assert!(buf[0] > 90.0, "waiting must enlarge the buffer");
    }

    #[test]
    fn unreachable_leg_is_infeasible() {
        // Two disconnected nodes.
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(100.0, 0.0));
        let engine = SpEngine::new(b.build().unwrap());
        let r = request(1, 0, 1, 0.0, 10.0, 2.0);
        let eval = Schedule::direct(&r).evaluate(&engine, 0, 0.0, 0, 4);
        assert!(!eval.feasible);
    }

    #[test]
    fn request_ids_dedup_and_contains() {
        let r1 = request(5, 0, 2, 0.0, 20.0, 1.5);
        let r2 = request(3, 1, 2, 0.0, 10.0, 1.5);
        let mut s = Schedule::direct(&r1);
        s.insert(1, Waypoint::pickup(&r2));
        s.insert(2, Waypoint::dropoff(&r2));
        assert_eq!(s.request_ids(), vec![3, 5]);
        assert!(s.contains_request(5));
        assert!(!s.contains_request(9));
        assert!(s.is_well_formed());
    }
}
