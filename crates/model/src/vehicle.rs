//! Vehicles and their dynamic state.
//!
//! A [`Vehicle`] carries its capacity, the node where it will next be free,
//! the riders currently on board and its planned [`Schedule`].  The batched
//! simulator advances vehicles between batches with [`Vehicle::advance_to`],
//! which executes every way-point whose service time falls before the new
//! simulation time — this is the "vehicles keep moving over time" behaviour
//! that the grid index has to keep up with (§II-B).

use crate::request::RequestId;
use crate::schedule::{Schedule, ScheduleEval, WaypointKind};
use serde::{Deserialize, Serialize};
use structride_roadnet::{NodeId, SpEngine};

/// Identifier of a vehicle.
pub type VehicleId = u32;

/// A vehicle (the paper's worker `w_j`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vehicle {
    /// Unique identifier.
    pub id: VehicleId,
    /// Seat capacity `c_j`.
    pub capacity: u32,
    /// Node where the vehicle is (or will be once it finishes its current
    /// leg); all planning starts from here.
    pub node: NodeId,
    /// Time at which the vehicle is available at [`Vehicle::node`].
    pub free_at: f64,
    /// Riders currently on board.
    pub onboard: u32,
    /// The planned, not-yet-executed part of the schedule.
    pub schedule: Schedule,
    /// Requests currently assigned (picked up or scheduled).
    pub assigned: Vec<RequestId>,
    /// Requests fully served (dropped off).
    pub completed: Vec<RequestId>,
    /// Total driving time accumulated by executed way-points.
    pub executed_travel: f64,
}

impl Vehicle {
    /// Creates an idle vehicle at `node` with the given seat capacity.
    pub fn new(id: VehicleId, node: NodeId, capacity: u32) -> Self {
        Vehicle {
            id,
            capacity,
            node,
            free_at: 0.0,
            onboard: 0,
            schedule: Schedule::new(),
            assigned: Vec::new(),
            completed: Vec::new(),
            executed_travel: 0.0,
        }
    }

    /// True if the vehicle has no planned way-points and no riders on board.
    pub fn is_idle(&self) -> bool {
        self.schedule.is_empty() && self.onboard == 0
    }

    /// Remaining seats.
    pub fn free_seats(&self) -> u32 {
        self.capacity.saturating_sub(self.onboard)
    }

    /// Evaluates a candidate schedule from this vehicle's current state.
    pub fn evaluate(&self, engine: &SpEngine, schedule: &Schedule) -> ScheduleEval {
        schedule.evaluate(engine, self.node, self.free_at, self.onboard, self.capacity)
    }

    /// Evaluates the vehicle's own planned schedule.
    pub fn evaluate_current(&self, engine: &SpEngine) -> ScheduleEval {
        self.evaluate(engine, &self.schedule)
    }

    /// Travel cost of the currently planned schedule (0 for an idle vehicle).
    pub fn planned_cost(&self, engine: &SpEngine) -> f64 {
        if self.schedule.is_empty() {
            0.0
        } else {
            let eval = self.evaluate_current(engine);
            if eval.feasible {
                eval.travel_cost
            } else {
                f64::INFINITY
            }
        }
    }

    /// Replaces the planned schedule and records newly assigned requests.
    ///
    /// The caller is responsible for having validated feasibility; this method
    /// only updates bookkeeping.
    pub fn commit_schedule(&mut self, schedule: Schedule) {
        for id in schedule.request_ids() {
            if !self.assigned.contains(&id) {
                self.assigned.push(id);
            }
        }
        self.schedule = schedule;
    }

    /// Advances the vehicle's execution to simulation time `now`: every
    /// way-point whose service time is `≤ now` is executed (riders board or
    /// alight, travel cost is accumulated) and removed from the planned
    /// schedule.  Returns the requests completed during this advance.
    pub fn advance_to(&mut self, engine: &SpEngine, now: f64) -> Vec<RequestId> {
        let mut newly_completed = Vec::new();
        if self.schedule.is_empty() {
            if self.free_at < now {
                self.free_at = now;
            }
            return newly_completed;
        }
        let eval = self.evaluate_current(engine);
        if !eval.feasible {
            // A committed schedule should stay feasible; if numerical drift
            // breaks it we freeze the vehicle rather than teleporting it.
            return newly_completed;
        }
        let mut executed = 0usize;
        let mut node = self.node;
        let mut time = self.free_at;
        for (idx, wp) in self.schedule.waypoints().iter().enumerate() {
            let service = eval.service_times[idx];
            if service > now {
                break;
            }
            self.executed_travel += engine.cost(node, wp.node);
            node = wp.node;
            time = service;
            match wp.kind {
                WaypointKind::Pickup => {
                    self.onboard += wp.riders;
                }
                WaypointKind::Dropoff => {
                    self.onboard = self.onboard.saturating_sub(wp.riders);
                    self.completed.push(wp.request);
                    newly_completed.push(wp.request);
                }
            }
            executed = idx + 1;
        }
        if executed > 0 {
            let remaining = self.schedule.waypoints()[executed..].to_vec();
            self.schedule = Schedule::from_waypoints(remaining);
            self.node = node;
            self.free_at = time;
        }
        if self.schedule.is_empty() && self.free_at < now {
            self.free_at = now;
        }
        newly_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::schedule::Waypoint;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    fn line_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..5u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn req(id: RequestId, s: NodeId, e: NodeId, cost: f64) -> Request {
        Request::with_detour(id, s, e, 1, 0.0, cost, 2.0, 300.0)
    }

    #[test]
    fn new_vehicle_is_idle() {
        let v = Vehicle::new(1, 3, 4);
        assert!(v.is_idle());
        assert_eq!(v.free_seats(), 4);
    }

    #[test]
    fn commit_and_advance_executes_waypoints() {
        let engine = line_engine();
        let mut v = Vehicle::new(1, 0, 4);
        let r = req(1, 1, 3, 20.0);
        let sched = Schedule::direct(&r);
        assert!(v.evaluate(&engine, &sched).feasible);
        v.commit_schedule(sched);
        assert_eq!(v.assigned, vec![1]);

        // At t=15 the pickup (t=10) has happened but not the drop-off (t=30).
        let done = v.advance_to(&engine, 15.0);
        assert!(done.is_empty());
        assert_eq!(v.onboard, 1);
        assert_eq!(v.node, 1);
        assert_eq!(v.schedule.len(), 1);

        // At t=100 everything is done.
        let done = v.advance_to(&engine, 100.0);
        assert_eq!(done, vec![1]);
        assert_eq!(v.onboard, 0);
        assert_eq!(v.node, 3);
        assert!(v.is_idle());
        assert_eq!(v.executed_travel, 30.0);
        assert_eq!(v.completed, vec![1]);
        // Idle vehicles drift forward in time.
        assert_eq!(v.free_at, 100.0);
    }

    #[test]
    fn advance_without_schedule_just_updates_time() {
        let engine = line_engine();
        let mut v = Vehicle::new(1, 2, 4);
        let done = v.advance_to(&engine, 50.0);
        assert!(done.is_empty());
        assert_eq!(v.free_at, 50.0);
        assert_eq!(v.node, 2);
    }

    #[test]
    fn planned_cost_reflects_schedule() {
        let engine = line_engine();
        let mut v = Vehicle::new(1, 0, 4);
        assert_eq!(v.planned_cost(&engine), 0.0);
        let r = req(1, 0, 2, 20.0);
        v.commit_schedule(Schedule::direct(&r));
        assert_eq!(v.planned_cost(&engine), 20.0);
    }

    #[test]
    fn multi_request_schedule_tracks_onboard() {
        let engine = line_engine();
        let mut v = Vehicle::new(7, 0, 2);
        let r1 = req(1, 0, 4, 40.0);
        let r2 = req(2, 1, 3, 20.0);
        let sched = Schedule::from_waypoints(vec![
            Waypoint::pickup(&r1),
            Waypoint::pickup(&r2),
            Waypoint::dropoff(&r2),
            Waypoint::dropoff(&r1),
        ]);
        let eval = v.evaluate(&engine, &sched);
        assert!(eval.feasible);
        assert_eq!(eval.max_onboard, 2);
        v.commit_schedule(sched);
        let done = v.advance_to(&engine, 1000.0);
        assert_eq!(done, vec![2, 1]);
        assert_eq!(v.executed_travel, 40.0);
    }
}
