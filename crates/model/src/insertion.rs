//! The linear insertion operator (§IV-A, following Tong et al. [37] and
//! Xu et al. [36]).
//!
//! Linear insertion places the pickup and drop-off of a *new* request into an
//! existing schedule **without reordering** the way-points already planned,
//! choosing the pair of positions that minimises the increase in total travel
//! cost while keeping the schedule feasible.  The paper uses it everywhere:
//! for the shareability test, inside the grouping tree (Algorithm 2), in SARD
//! itself and in the pruneGDP / GAS / TicketAssign+ baselines.
//!
//! The search tries every `(pickup, dropoff)` position pair and evaluates the
//! candidate with a full feasibility walk.  Buffer times (Definition 3) are
//! used to skip position pairs that cannot possibly absorb the extra detour,
//! which keeps the common case close to the linear behaviour the paper
//! describes while remaining exact.

use crate::request::Request;
use crate::schedule::{Schedule, Waypoint};
use crate::vehicle::Vehicle;
use structride_roadnet::{NodeId, SpEngine};

/// The result of a successful insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertionOutcome {
    /// Index at which the pickup way-point was inserted.
    pub pickup_pos: usize,
    /// Index at which the drop-off way-point ended up (after the pickup was
    /// inserted, so `dropoff_pos > pickup_pos`).
    pub dropoff_pos: usize,
    /// The new schedule including the request.
    pub schedule: Schedule,
    /// Increase in travel cost relative to the base schedule.
    pub added_cost: f64,
    /// Total travel cost of the new schedule.
    pub new_travel_cost: f64,
}

/// Inserts `request` into `base`, starting from an explicit vehicle state.
///
/// Returns `None` if no feasible position pair exists (or the base schedule is
/// itself infeasible from this state).
pub fn insert_into(
    engine: &SpEngine,
    start_node: NodeId,
    start_time: f64,
    onboard: u32,
    capacity: u32,
    base: &Schedule,
    request: &Request,
) -> Option<InsertionOutcome> {
    if request.riders > capacity {
        return None;
    }
    let base_eval = base.evaluate(engine, start_node, start_time, onboard, capacity);
    if !base.is_empty() && !base_eval.feasible {
        return None;
    }
    let base_cost = if base.is_empty() {
        0.0
    } else {
        base_eval.travel_cost
    };
    let buffers = if base.is_empty() {
        Vec::new()
    } else {
        base.buffer_times(&base_eval)
    };
    let n = base.len();

    let pickup = Waypoint::pickup(request);
    let dropoff = Waypoint::dropoff(request);

    let mut best: Option<InsertionOutcome> = None;

    // An index loop is clearer here than an iterator chain: `i` addresses both
    // the insertion position and the buffer/way-point arrays.
    #[allow(clippy::needless_range_loop)]
    for i in 0..=n {
        // Cheap pruning: the earliest the vehicle could reach the pickup when
        // it is placed at position i is the service time of way-point i-1 plus
        // the direct leg; if that already misses the pickup deadline, no j can
        // fix it for this i.
        let prev_node = if i == 0 {
            start_node
        } else {
            base.waypoints()[i - 1].node
        };
        let prev_time = if i == 0 {
            start_time
        } else {
            base_eval.service_times[i - 1]
        };
        let reach = prev_time + engine.cost(prev_node, request.source);
        if reach > request.pickup_deadline + crate::schedule::TIME_EPS {
            continue;
        }
        // Extra delay caused just by visiting the pickup between i-1 and i:
        // the detour distance plus any waiting for the request release at the
        // new pickup.  `buffers[i]` is the exact maximum arrival delay
        // way-point i can take (downstream waiting absorption included, see
        // `Schedule::buffer_times`), and inserting the drop-off can only add
        // further delay, so exceeding the buffer rules out every j for this i.
        if i < n {
            let next_node = base.waypoints()[i].node;
            let direct = engine.cost(prev_node, next_node);
            let via =
                engine.cost(prev_node, request.source) + engine.cost(request.source, next_node);
            let delay = (via - direct) + (request.release - reach).max(0.0);
            if delay > buffers[i] + crate::schedule::TIME_EPS {
                continue;
            }
        }
        for j in i..=n {
            let mut wps = Vec::with_capacity(n + 2);
            wps.extend_from_slice(&base.waypoints()[..i]);
            wps.push(pickup);
            wps.extend_from_slice(&base.waypoints()[i..j]);
            wps.push(dropoff);
            wps.extend_from_slice(&base.waypoints()[j..]);
            let cand = Schedule::from_waypoints(wps);
            let eval = cand.evaluate(engine, start_node, start_time, onboard, capacity);
            if !eval.feasible {
                continue;
            }
            let added = eval.travel_cost - base_cost;
            let better = match &best {
                None => true,
                Some(b) => added < b.added_cost - 1e-12,
            };
            if better {
                best = Some(InsertionOutcome {
                    pickup_pos: i,
                    dropoff_pos: j + 1,
                    schedule: cand,
                    added_cost: added,
                    new_travel_cost: eval.travel_cost,
                });
            }
        }
    }
    best
}

/// Inserts `request` into `vehicle`'s planned schedule (without committing).
pub fn insert_request(
    engine: &SpEngine,
    vehicle: &Vehicle,
    request: &Request,
) -> Option<InsertionOutcome> {
    insert_into(
        engine,
        vehicle.node,
        vehicle.free_at,
        vehicle.onboard,
        vehicle.capacity,
        &vehicle.schedule,
        request,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use structride_roadnet::{Point, RoadNetworkBuilder};

    /// 0 -10- 1 -10- 2 -10- 3 -10- 4 (bidirectional line).
    fn line_engine() -> SpEngine {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 1..5u32 {
            b.add_bidirectional(i - 1, i, 10.0).unwrap();
        }
        SpEngine::new(b.build().unwrap())
    }

    fn req(id: u32, s: NodeId, e: NodeId, cost: f64, gamma: f64) -> Request {
        Request::with_detour(id, s, e, 1, 0.0, cost, gamma, 300.0)
    }

    #[test]
    fn insert_into_empty_schedule_gives_direct_route() {
        let engine = line_engine();
        let r = req(1, 1, 3, 20.0, 1.5);
        let out = insert_into(&engine, 0, 0.0, 0, 4, &Schedule::new(), &r).unwrap();
        assert_eq!(out.pickup_pos, 0);
        assert_eq!(out.dropoff_pos, 1);
        // Travel includes the deadhead leg 0->1.
        assert_eq!(out.new_travel_cost, 30.0);
        assert_eq!(out.added_cost, 30.0);
        assert!(out.schedule.is_well_formed());
    }

    #[test]
    fn shares_trip_when_on_the_way() {
        let engine = line_engine();
        // Vehicle at 0 already serving 0 -> 4; new request 1 -> 3 lies on the way.
        let r1 = req(1, 0, 4, 40.0, 1.6);
        let r2 = req(2, 1, 3, 20.0, 1.6);
        let base = Schedule::direct(&r1);
        let out = insert_into(&engine, 0, 0.0, 0, 4, &base, &r2).unwrap();
        // No extra distance is needed: 0,1,3,4 is on the straight line.
        assert!(out.added_cost.abs() < 1e-9);
        assert_eq!(out.new_travel_cost, 40.0);
        assert_eq!(out.schedule.to_string(), "⟨s1, s2, e2, e1⟩");
    }

    #[test]
    fn infeasible_when_capacity_exhausted() {
        let engine = line_engine();
        let r1 = Request::with_detour(1, 0, 4, 2, 0.0, 40.0, 1.6, 300.0);
        let r2 = Request::with_detour(2, 1, 3, 1, 0.0, 20.0, 1.6, 300.0);
        let base = Schedule::direct(&r1);
        // Capacity 2 is already full while r1 is on board and the overlap is
        // unavoidable (r2 lies strictly inside r1's trip).
        assert!(insert_into(&engine, 0, 0.0, 0, 2, &base, &r2).is_none());
        // One more seat makes it possible.
        assert!(insert_into(&engine, 0, 0.0, 0, 3, &base, &r2).is_some());
    }

    #[test]
    fn infeasible_when_rider_count_exceeds_capacity() {
        let engine = line_engine();
        let r = Request::with_detour(1, 0, 2, 5, 0.0, 20.0, 1.5, 300.0);
        assert!(insert_into(&engine, 0, 0.0, 0, 4, &Schedule::new(), &r).is_none());
    }

    #[test]
    fn respects_existing_deadlines() {
        let engine = line_engine();
        // r1 has zero detour budget beyond gamma=1.2 -> 8s slack on a 40s trip.
        let r1 = req(1, 0, 4, 40.0, 1.2);
        // r2 goes the other way: picking it up would require a detour.
        let r2 = req(2, 3, 1, 20.0, 3.0);
        let base = Schedule::direct(&r1);
        let out = insert_into(&engine, 0, 0.0, 0, 4, &base, &r2);
        // The only way to serve r2 with r1 would blow r1's 8-second budget.
        assert!(out.is_none());
    }

    #[test]
    fn picks_cheapest_among_feasible_positions() {
        let engine = line_engine();
        let r1 = req(1, 0, 2, 20.0, 2.0);
        let r2 = req(2, 2, 4, 20.0, 2.0);
        let base = Schedule::direct(&r1);
        let out = insert_into(&engine, 0, 0.0, 0, 4, &base, &r2).unwrap();
        // Chaining the trips costs nothing extra beyond r2's own trip (several
        // orderings tie at +20; any of them is acceptable).
        assert!((out.added_cost - 20.0).abs() < 1e-9);
        assert!(out.schedule.is_well_formed());
        assert!(out.schedule.contains_request(1) && out.schedule.contains_request(2));
    }

    #[test]
    fn vehicle_wrapper_uses_vehicle_state() {
        let engine = line_engine();
        let mut v = Vehicle::new(1, 4, 4);
        v.free_at = 5.0;
        let r = req(1, 3, 1, 20.0, 2.0);
        let out = insert_request(&engine, &v, &r).unwrap();
        // Deadhead 4->3 (10s) plus the trip (20s).
        assert_eq!(out.new_travel_cost, 30.0);
    }

    #[test]
    fn release_boundary_insertion_with_absorbed_detour_is_not_pruned() {
        let engine = line_engine();
        // Vehicle idles at node 1.  Base: r1 from 2 to 4, released at t=100 —
        // the vehicle reaches the pickup at t=10 and waits 90 s, and that
        // waiting can absorb a detour taken beforehand.
        let r1 = Request::new(1, 2, 4, 1, 100.0, 130.0, 112.0, 20.0);
        let base = Schedule::direct(&r1);
        assert!(base.evaluate(&engine, 1, 0.0, 0, 4).feasible);
        // r2 starts behind the vehicle (detour 1->0->2 costs 20 s extra) and
        // is released at t=10 — exactly when the vehicle can reach it.  This
        // is the boundary case the old guard (`reach >= release` switches the
        // naive slack cutoff on) wrongly pruned: 20 s exceeds r1's 10–12 s of
        // naive slack, but the 90 s wait at r1's pickup absorbs it entirely.
        let r2 = Request::new(2, 0, 2, 1, 10.0, 90.0, 40.0, 20.0);
        let out = insert_into(&engine, 1, 0.0, 0, 4, &base, &r2)
            .expect("feasible insertion at the release boundary must not be pruned");
        assert!(out.schedule.is_well_formed());
        assert!(out.schedule.contains_request(2));
        let eval = out.schedule.evaluate(&engine, 1, 0.0, 0, 4);
        assert!(eval.feasible);
        // The cheapest placement serves r2 on the way to r1's pickup.
        assert_eq!(out.pickup_pos, 0);
        assert!((out.added_cost - 20.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_still_rejects_unabsorbable_detours() {
        let engine = line_engine();
        // Same shape as above but r1 is released immediately: no waiting, so
        // a 20 s detour genuinely breaks r1's deadlines and the guard (and
        // the exact evaluation) must reject every placement.
        let r1 = Request::new(1, 2, 4, 1, 0.0, 35.0, 15.0, 20.0);
        let base = Schedule::direct(&r1);
        assert!(base.evaluate(&engine, 1, 0.0, 0, 4).feasible);
        let r2 = Request::new(2, 0, 2, 1, 10.0, 90.0, 40.0, 20.0);
        assert!(insert_into(&engine, 1, 0.0, 0, 4, &base, &r2).is_none());
    }

    #[test]
    fn insertion_result_always_well_formed_and_feasible() {
        let engine = line_engine();
        let r1 = req(1, 0, 4, 40.0, 1.8);
        let r2 = req(2, 1, 3, 20.0, 1.8);
        let r3 = req(3, 2, 4, 20.0, 1.8);
        let mut sched = Schedule::direct(&r1);
        for r in [&r2, &r3] {
            if let Some(out) = insert_into(&engine, 0, 0.0, 0, 6, &sched, r) {
                assert!(out.schedule.is_well_formed());
                let eval = out.schedule.evaluate(&engine, 0, 0.0, 0, 6);
                assert!(eval.feasible);
                assert!((eval.travel_cost - out.new_travel_cost).abs() < 1e-9);
                sched = out.schedule;
            }
        }
        assert!(sched.contains_request(2) || sched.contains_request(3));
    }
}
