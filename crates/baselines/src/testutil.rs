//! Shared test fixtures for the baseline dispatcher suites.
//!
//! Every baseline used to carry its own copy of the same bidirectional
//! line-graph engine (`0 -10- 1 -10- … `), request constructor and context
//! helper; a bug fixed in one copy could silently survive in the others.
//! They now all share this module — parameterised by node count, since the
//! suites exercise lines of different lengths.

use structride_core::{DispatchContext, StructRideConfig};
use structride_model::Request;
use structride_roadnet::{Point, RoadNetworkBuilder, SpEngine};

/// A bidirectional line of `nodes` nodes, 100 m apart, 10 s per hop:
/// `0 -10- 1 -10- 2 -10- …`.
pub(crate) fn line_engine(nodes: u32) -> SpEngine {
    assert!(nodes >= 2, "a line needs at least two nodes");
    let mut b = RoadNetworkBuilder::new();
    for i in 0..nodes {
        b.add_node(Point::new(i as f64 * 100.0, 0.0));
    }
    for i in 1..nodes {
        b.add_bidirectional(i - 1, i, 10.0).unwrap();
    }
    SpEngine::new(b.build().unwrap())
}

/// A single-rider request released at t=0 with the paper's deadline model.
pub(crate) fn req(id: u32, s: u32, e: u32, cost: f64, gamma: f64) -> Request {
    Request::with_detour(id, s, e, 1, 0.0, cost, gamma, 300.0)
}

/// A stand-alone dispatch context with the default configuration.
pub(crate) fn ctx(engine: &SpEngine, now: f64) -> DispatchContext<'_> {
    DispatchContext::new(engine, StructRideConfig::default(), now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_engine_has_expected_geometry() {
        let engine = line_engine(6);
        assert_eq!(engine.node_count(), 6);
        assert_eq!(engine.cost(0, 5), 50.0);
        assert_eq!(engine.cost(5, 0), 50.0);
        assert_eq!(engine.cost(2, 3), 10.0);
    }

    #[test]
    fn req_uses_paper_deadline_model() {
        let r = req(1, 0, 2, 20.0, 1.5);
        assert_eq!(r.release, 0.0);
        assert_eq!(r.deadline, 30.0);
        assert_eq!(r.riders, 1);
    }
}
