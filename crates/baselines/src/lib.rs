//! Baseline dispatchers from the paper's experimental study (§V-A).
//!
//! Every baseline implements the same [`Dispatcher`](structride_core::Dispatcher)
//! trait as SARD, so the simulator and the experiment harness can run them
//! side by side exactly as the paper does:
//!
//! * [`PruneGdp`] — the online linear-insertion greedy of Tong et al. [37]:
//!   each request is inserted into the vehicle with the smallest cost increase
//!   the moment it arrives;
//! * [`TicketAssignPlus`] — the parallel online method of Pan & Li [54]:
//!   multiple worker threads insert requests concurrently, serialising on
//!   per-vehicle ticket locks;
//! * [`Gas`] — the additive-tree batch method of Zeng et al. [33]: per batch,
//!   vehicles (in random order) enumerate feasible request groups and take the
//!   most profitable one (total request length as profit);
//! * [`Rtv`] — the trip-vehicle assignment of Alonso-Mora et al. [27]: per
//!   batch, feasible trips are enumerated per vehicle and a global assignment
//!   is solved.  The paper uses a glpk ILP; this reproduction substitutes a
//!   greedy + swap local-search solver over the same trip candidates (see
//!   `DESIGN.md` §4);
//! * [`DemandRepositioning`] — the stand-in for the deep-RL DARM+DPRS [53]:
//!   greedy matching plus demand-aware repositioning of idle vehicles toward
//!   hot grid cells (a learned policy is out of scope; the substitution is
//!   documented in `DESIGN.md` §4).

pub mod darm;
pub mod gas;
pub mod prunegdp;
pub mod rtv;
#[cfg(test)]
pub(crate) mod testutil;
pub mod ticket;

pub use darm::DemandRepositioning;
pub use gas::Gas;
pub use prunegdp::PruneGdp;
pub use rtv::Rtv;
pub use ticket::TicketAssignPlus;

use structride_core::{DispatcherBuilder, DispatcherKind};
use structride_model::RequestId;
use structride_sharegraph::ShareabilityGraph;

/// The full dispatcher registry of the workspace: the core dispatchers
/// (SARD, exact assignment) plus every baseline this crate provides.
///
/// This is the registry the replay CLI and the bench drivers build from —
/// the single successor to the hand-maintained key lists and per-driver
/// constructor closures.  Constructors match the historical ones exactly
/// (same config plumbing), so dispatchers built here behave identically to
/// the pre-registry code paths and pre-change traces replay clean.
pub fn standard_registry() -> DispatcherBuilder {
    DispatcherBuilder::core()
        .register(DispatcherKind::Rtv, |config| {
            Box::new(Rtv::new(config.cost.penalty_coefficient))
        })
        .register(DispatcherKind::PruneGdp, |_| Box::new(PruneGdp::new()))
        .register(DispatcherKind::Gas, |_| Box::new(Gas::default()))
        .register(DispatcherKind::Darm, |_| {
            Box::new(DemandRepositioning::new())
        })
        .register(DispatcherKind::Ticket, |_| {
            Box::new(TicketAssignPlus::default())
        })
}

/// Builds the complete graph over the given request ids.
///
/// GAS and RTV enumerate request combinations without the shareability-graph
/// clique pruning that SARD adds; feeding the grouping routine a complete
/// graph reproduces that behaviour (every pair is a candidate, infeasible ones
/// are rejected by the schedule checks alone).
pub(crate) fn complete_graph(ids: &[RequestId]) -> ShareabilityGraph {
    let mut g = ShareabilityGraph::new();
    for &id in ids {
        g.add_node(id);
    }
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            g.add_edge(ids[i], ids[j]);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_builds_every_kind() {
        let registry = standard_registry();
        let config = structride_core::StructRideConfig::default();
        assert_eq!(
            registry.keys(),
            vec!["sard", "assign", "rtv", "prunegdp", "gas", "darm", "ticket"]
        );
        for kind in registry.all() {
            let d = registry.build(kind, &config).expect("registered");
            assert!(!d.name().is_empty());
        }
        // The legacy alias still resolves, and only ticket is exempt from
        // the replay invariant.
        assert_eq!(registry.from_key("gdp"), Some(DispatcherKind::PruneGdp));
        assert_eq!(
            registry.deterministic_keys(),
            vec!["sard", "assign", "rtv", "prunegdp", "gas", "darm"]
        );
    }

    #[test]
    fn complete_graph_connects_every_pair() {
        let g = complete_graph(&[1, 2, 3, 4]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 6);
        for a in 1..=4u32 {
            for b in 1..=4u32 {
                if a != b {
                    assert!(g.has_edge(a, b));
                }
            }
        }
        assert_eq!(complete_graph(&[]).node_count(), 0);
        assert_eq!(complete_graph(&[7]).edge_count(), 0);
    }
}
