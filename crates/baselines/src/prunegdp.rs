//! pruneGDP — the online insertion baseline (Tong et al. [37]).
//!
//! Requests are handled strictly in arrival order: each one is inserted into
//! the current schedule of the vehicle whose total travel cost increases the
//! least (linear insertion, no reordering).  A request that fits nowhere is
//! rejected immediately — the online methods have no working pool, which is
//! exactly why their service rates trail the batch methods in the paper.

use structride_core::{BatchOutcome, DispatchContext, Dispatcher};
use structride_model::{insertion, InsertionOutcome, Request, Vehicle};

/// The pruneGDP online greedy dispatcher.
#[derive(Debug, Default)]
pub struct PruneGdp {
    rejected: usize,
}

impl PruneGdp {
    /// Creates the dispatcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests that could not be inserted anywhere.
    pub fn rejected(&self) -> usize {
        self.rejected
    }
}

impl Dispatcher for PruneGdp {
    fn name(&self) -> &'static str {
        "pruneGDP"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let engine = ctx.engine;
        let mut outcome = BatchOutcome::empty();
        for request in new_requests {
            let mut best: Option<(usize, InsertionOutcome)> = None;
            let mut consider = |vi: usize| {
                let vehicle = &vehicles[vi];
                if let Some(out) = insertion::insert_request(engine, vehicle, request) {
                    let better = best
                        .as_ref()
                        .map(|(_, b)| out.added_cost < b.added_cost - 1e-12)
                        .unwrap_or(true);
                    if better {
                        best = Some((vi, out));
                    }
                }
            };
            if let Some(index) = ctx.fleet_index {
                // Certified prescreen: vehicles outside the reachability
                // radius provably cannot meet the pickup deadline, so
                // skipping them cannot change which insertion wins (the
                // survivors keep ascending fleet order, preserving the
                // first-within-epsilon tie-break).
                let network = engine.network();
                let p = network.coord(request.source);
                let survivors = index.certified_candidates(
                    network,
                    vehicles,
                    p.x,
                    p.y,
                    request.pickup_deadline,
                );
                ctx.scratch
                    .count_prescreen_pruned((vehicles.len() - survivors.len()) as u64);
                ctx.scratch
                    .count_insertion_evaluations(survivors.len() as u64);
                for vi in survivors {
                    consider(vi);
                }
            } else {
                ctx.scratch
                    .count_insertion_evaluations(vehicles.len() as u64);
                for vi in 0..vehicles.len() {
                    consider(vi);
                }
            }
            match best {
                Some((vi, out)) => {
                    vehicles[vi].commit_schedule(out.schedule);
                    outcome.assigned.push(request.id);
                }
                None => self.rejected += 1,
            }
        }
        outcome
    }

    fn memory_bytes(&self) -> usize {
        // Online first-come-first-serve: no batch structures beyond the
        // vehicles' own schedules.
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, line_engine, req};

    #[test]
    fn assigns_to_cheapest_vehicle() {
        let engine = line_engine(5);
        let mut vehicles = vec![Vehicle::new(0, 4, 4), Vehicle::new(1, 1, 4)];
        let mut gdp = PruneGdp::new();
        let r = req(1, 1, 3, 20.0, 1.5);
        let out = gdp.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &[r]);
        assert_eq!(out.assigned, vec![1]);
        // Vehicle 1 is already at the pickup, so it gets the job.
        assert!(vehicles[1].schedule.contains_request(1));
        assert!(vehicles[0].schedule.is_empty());
        assert_eq!(gdp.rejected(), 0);
    }

    #[test]
    fn rejects_infeasible_requests_immediately() {
        let engine = line_engine(5);
        let mut vehicles = vec![Vehicle::new(0, 4, 4)];
        let mut gdp = PruneGdp::new();
        // Pickup deadline too tight for a vehicle 40 s away.
        let r = req(1, 0, 2, 20.0, 1.1);
        let out = gdp.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &[r]);
        assert!(out.assigned.is_empty());
        assert_eq!(gdp.rejected(), 1);
    }

    #[test]
    fn later_requests_share_existing_schedules() {
        let engine = line_engine(5);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let mut gdp = PruneGdp::new();
        let r1 = req(1, 0, 4, 40.0, 1.6);
        let r2 = req(2, 1, 3, 20.0, 1.6);
        let out = gdp.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &[r1, r2]);
        assert_eq!(out.assigned, vec![1, 2]);
        let v = &vehicles[0];
        assert!(v.schedule.contains_request(1) && v.schedule.contains_request(2));
        // Sharing costs no extra distance on the straight line.
        assert!((v.planned_cost(&engine) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn memory_footprint_is_negligible() {
        assert!(PruneGdp::new().memory_bytes() < 1024);
    }
}
