//! RTV — trip-vehicle assignment (Alonso-Mora et al. [27]).
//!
//! The original method builds, per batch, the RV graph (which requests each
//! vehicle can serve and which request pairs are shareable), expands it into
//! the RTV graph of feasible *trips* per vehicle, and solves an integer linear
//! program that assigns at most one trip per vehicle and at most one vehicle
//! per request, minimising travel cost plus penalties for unassigned requests.
//!
//! This reproduction keeps the expensive part — the per-vehicle trip
//! enumeration over pairwise-shareable requests — and solves the trip choice
//! *exactly*: the deterministic branch-and-bound of
//! [`structride_core::lap::solve_group_choice`] over the same candidate set
//! replaces the glpk ILP, seeded with the earlier greedy + pairwise-swap
//! heuristic as its incumbent (kept as [`Rtv::greedy_swap_reference`], the
//! test reference and the floor the exact answer can never fall below).  The
//! committed assignment is therefore the true ILP optimum whenever the node
//! budget holds — restoring the original method's optimality while staying
//! in-workspace — and `BatchOutcome::solver` reports the proof state.

use std::collections::{HashMap, HashSet};
use structride_core::lap::{self, SolverStats};
use structride_core::{
    enumerate_groups, BatchOutcome, CandidateGroup, DispatchContext, Dispatcher, PendingSnapshot,
};
use structride_model::{Request, RequestId, Vehicle};
use structride_sharegraph::{pairwise_shareable, ShareabilityGraph};

/// One candidate assignment: a trip (request group) served by a vehicle.
#[derive(Debug, Clone)]
struct TripCandidate {
    vehicle: usize,
    group: CandidateGroup,
    /// Net objective gain of taking this trip: avoided penalties minus the
    /// added travel cost (larger is better).
    gain: f64,
}

/// The RTV batch dispatcher.
#[derive(Debug)]
pub struct Rtv {
    /// Penalty coefficient used in the assignment objective (the same `p_r`
    /// the unified cost uses).
    penalty_coefficient: f64,
    /// Pool of requests carried across batches.
    pending: HashMap<RequestId, Request>,
    /// Peak number of trip candidates (memory accounting, Fig. 14 — the RTV
    /// graph is by far the largest structure among the tested methods).
    peak_candidates: usize,
}

impl Rtv {
    /// Branch-and-bound node budget for the exact trip choice.  Generous for
    /// the reproduced batch sizes; if it ever trips, the commit falls back to
    /// the best solution found (≥ the greedy incumbent) and
    /// `BatchOutcome::solver` reports `optimal: false`.
    const NODE_BUDGET: u64 = 1 << 20;

    /// Creates the dispatcher with the given penalty coefficient.
    pub fn new(penalty_coefficient: f64) -> Self {
        Rtv {
            penalty_coefficient,
            pending: HashMap::new(),
            peak_candidates: 0,
        }
    }

    /// Number of requests currently waiting in the pool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Greedy assignment + pairwise improvement over the trip candidates —
    /// the pre-exact commit path, kept as the branch-and-bound's incumbent
    /// seed and as the reference the exact answer is tested against.
    fn greedy_swap_reference(candidates: &[TripCandidate], n_vehicles: usize) -> Vec<usize> {
        // Greedy: take candidates by descending gain, respecting vehicle and
        // request exclusivity.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            candidates[b]
                .gain
                .partial_cmp(&candidates[a].gain)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut vehicle_used = vec![false; n_vehicles];
        let mut request_used: HashSet<RequestId> = HashSet::new();
        let mut chosen: Vec<usize> = Vec::new();
        for idx in order {
            let c = &candidates[idx];
            if c.gain <= 0.0 {
                continue;
            }
            if vehicle_used[c.vehicle] {
                continue;
            }
            if c.group.members.iter().any(|r| request_used.contains(r)) {
                continue;
            }
            vehicle_used[c.vehicle] = true;
            request_used.extend(c.group.members.iter().copied());
            chosen.push(idx);
        }
        // One pass of pairwise improvement: try replacing each chosen trip by
        // an unchosen one on the same vehicle that frees/serves requests with
        // a better total gain.  (A stand-in for the ILP's global optimality.)
        let mut improved = true;
        let mut guard = 0;
        while improved && guard < 8 {
            improved = false;
            guard += 1;
            for (pos, &chosen_idx) in chosen.clone().iter().enumerate() {
                let current = &candidates[chosen_idx];
                for (alt_idx, alt) in candidates.iter().enumerate() {
                    if alt.vehicle != current.vehicle || alt_idx == chosen_idx {
                        continue;
                    }
                    // Requests of the alternative must be free apart from the
                    // ones the current trip already holds.
                    let current_members: HashSet<RequestId> =
                        current.group.members.iter().copied().collect();
                    let conflict = alt
                        .group
                        .members
                        .iter()
                        .any(|r| !current_members.contains(r) && request_used.contains(r));
                    if conflict {
                        continue;
                    }
                    if alt.gain > current.gain + 1e-9 {
                        // Swap.
                        for r in &current.group.members {
                            request_used.remove(r);
                        }
                        request_used.extend(alt.group.members.iter().copied());
                        chosen[pos] = alt_idx;
                        improved = true;
                        break;
                    }
                }
            }
        }
        chosen
    }
}

impl Default for Rtv {
    fn default() -> Self {
        Self::new(10.0)
    }
}

impl Dispatcher for Rtv {
    fn name(&self) -> &'static str {
        "RTV"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let engine = ctx.engine;
        let now = ctx.now;
        for r in new_requests {
            self.pending.insert(r.id, r.clone());
        }
        self.pending.retain(|_, r| !r.is_expired(now));
        if self.pending.is_empty() || vehicles.is_empty() {
            return BatchOutcome::empty();
        }

        let pool_ids: Vec<RequestId> = {
            let mut ids: Vec<RequestId> = self.pending.keys().copied().collect();
            ids.sort_unstable();
            ids
        };

        // --- RV graph: pairwise-shareable requests (no angle pruning). -----
        let max_capacity = vehicles.iter().map(|v| v.capacity).max().unwrap_or(4);
        let mut rv = ShareabilityGraph::new();
        for &id in &pool_ids {
            rv.add_node(id);
        }
        for i in 0..pool_ids.len() {
            for j in (i + 1)..pool_ids.len() {
                let a = &self.pending[&pool_ids[i]];
                let b = &self.pending[&pool_ids[j]];
                if pairwise_shareable(engine, a, b, max_capacity) {
                    rv.add_edge(a.id, b.id);
                }
            }
        }

        // --- RTV graph: feasible trips per vehicle. -------------------------
        let mut candidates: Vec<TripCandidate> = Vec::new();
        for (vi, vehicle) in vehicles.iter().enumerate() {
            let groups = enumerate_groups(
                ctx,
                &rv,
                &self.pending,
                &pool_ids,
                vehicle,
                vehicle.capacity as usize,
            );
            for group in groups {
                let gain = self.penalty_coefficient * group.members_direct_cost - group.added_cost;
                candidates.push(TripCandidate {
                    vehicle: vi,
                    group,
                    gain,
                });
            }
        }
        self.peak_candidates = self.peak_candidates.max(candidates.len());

        // --- exact assignment (branch-and-bound over the LAP relaxation). ---
        // The greedy+swap heuristic seeds the incumbent, so the exact answer
        // can never fall below the pre-exact commit path even on node-budget
        // exhaustion.
        let incumbent = Self::greedy_swap_reference(&candidates, vehicles.len());
        let group_candidates: Vec<lap::GroupCandidate> = candidates
            .iter()
            .map(|c| lap::GroupCandidate {
                vehicle: c.vehicle,
                requests: c.group.members.clone(),
                gain: c.gain,
            })
            .collect();
        // The per-batch deadline budget, when the fault injector carries one,
        // overrides the generous default — the B&B then trips early and the
        // commit degrades to the greedy+swap incumbent (never worse, by the
        // seeding contract).
        let budget = ctx
            .config
            .faults
            .solver_budget_at(ctx.batch_index)
            .unwrap_or(Self::NODE_BUDGET);
        let choice = lap::solve_group_choice(&group_candidates, &incumbent, budget);
        let mut outcome = BatchOutcome::empty();
        for &idx in &choice.chosen {
            let c = &candidates[idx];
            vehicles[c.vehicle].commit_schedule(c.group.schedule.clone());
            for rid in &c.group.members {
                self.pending.remove(rid);
                outcome.assigned.push(*rid);
            }
        }
        outcome.assigned.sort_unstable();
        outcome.solver = Some(SolverStats {
            rows: vehicles.len(),
            cols: candidates.len(),
            bb_nodes: choice.nodes,
            rounds: 1,
            optimal: choice.optimal,
            fallbacks: u64::from(!choice.optimal),
        });
        outcome
    }

    fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn memory_bytes(&self) -> usize {
        // The RTV graph (trip candidates, each holding a schedule) dominates —
        // the paper reports RTV using a multiple of the other methods' memory.
        self.pending.capacity() * (std::mem::size_of::<Request>() + 16) + self.peak_candidates * 512
    }

    fn take_pending(&mut self) -> Vec<Request> {
        let mut pool: Vec<Request> = self.pending.drain().map(|(_, r)| r).collect();
        pool.sort_unstable_by_key(|r| r.id);
        pool
    }

    fn restore_pending(&mut self, pool: Vec<Request>) {
        for r in pool {
            self.pending.insert(r.id, r);
        }
    }

    fn checkpoint_pending(&self) -> PendingSnapshot {
        let mut pool: Vec<Request> = self.pending.values().cloned().collect();
        pool.sort_unstable_by_key(|r| r.id);
        PendingSnapshot {
            pool,
            edges: Vec::new(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: PendingSnapshot) {
        for r in snapshot.pool {
            self.pending.insert(r.id, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, line_engine, req};

    #[test]
    fn assigns_shareable_requests_to_one_vehicle() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4), Vehicle::new(1, 5, 4)];
        let requests = vec![req(1, 0, 4, 40.0, 1.6), req(2, 1, 3, 20.0, 1.6)];
        let mut rtv = Rtv::default();
        let out = rtv.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert_eq!(out.assigned, vec![1, 2]);
        // Both requests ride the vehicle that starts at their corridor.
        assert!(vehicles[0].schedule.contains_request(1));
        assert!(vehicles[0].schedule.contains_request(2));
        assert!(vehicles[1].schedule.is_empty());
        // The exact solve reports its telemetry and proved optimality.
        let solver = out.solver.expect("exact RTV reports solver stats");
        assert_eq!(solver.rows, 2);
        assert!(solver.cols >= 1);
        assert!(solver.optimal);
    }

    #[test]
    fn each_request_and_vehicle_used_at_most_once() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 2), Vehicle::new(1, 2, 2)];
        let requests = vec![
            req(1, 0, 3, 30.0, 1.6),
            req(2, 1, 4, 30.0, 1.6),
            req(3, 2, 5, 30.0, 1.6),
            req(4, 3, 5, 20.0, 1.6),
        ];
        let mut rtv = Rtv::default();
        let out = rtv.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        // No duplicates among assigned requests.
        let mut ids = out.assigned.clone();
        ids.dedup();
        assert_eq!(ids.len(), out.assigned.len());
        // Each assigned request sits in exactly one schedule.
        for id in &out.assigned {
            let holders = vehicles
                .iter()
                .filter(|v| v.schedule.contains_request(*id))
                .count();
            assert_eq!(holders, 1);
        }
        // Feasibility of all committed schedules.
        for v in &vehicles {
            if !v.schedule.is_empty() {
                assert!(v.evaluate_current(&engine).feasible);
            }
        }
    }

    #[test]
    fn pending_pool_carries_and_expires() {
        let engine = line_engine(6);
        let mut rtv = Rtv::default();
        // Nothing can be served without vehicles.
        let r = req(1, 0, 2, 20.0, 2.0);
        let out = rtv.dispatch_batch(&ctx(&engine, 0.0), &mut [], &[r]);
        assert!(out.assigned.is_empty());
        assert_eq!(rtv.pending_len(), 1);
        // After its pickup deadline the request silently leaves the pool.
        let out = rtv.dispatch_batch(&ctx(&engine, 10_000.0), &mut [], &[]);
        assert!(out.assigned.is_empty());
        assert_eq!(rtv.pending_len(), 0);
    }

    fn trip(vehicle: usize, members: Vec<RequestId>, gain: f64) -> TripCandidate {
        let direct = members.len() as f64 * 10.0;
        TripCandidate {
            vehicle,
            group: CandidateGroup {
                members,
                schedule: structride_model::Schedule::new(),
                travel_cost: 1.0,
                added_cost: 1.0,
                members_direct_cost: direct,
            },
            gain,
        }
    }

    /// The classic instance where greedy blocks itself: the pair trip on
    /// vehicle 0 (gain 288) beats either singleton alone, but the two
    /// singletons across both vehicles total 291.
    fn blocking_candidates() -> Vec<TripCandidate> {
        vec![
            trip(0, vec![1], 95.0),
            trip(0, vec![1, 2], 288.0),
            trip(1, vec![2], 196.0),
        ]
    }

    #[test]
    fn greedy_reference_prefers_higher_gain_trips() {
        // The retained pre-exact path: takes the dominant pair on vehicle 0
        // and correctly refuses to also hand r2 to vehicle 1 — but stops at
        // total gain 288, which is what the exact path must beat.
        let candidates = blocking_candidates();
        let chosen = Rtv::greedy_swap_reference(&candidates, 2);
        assert_eq!(chosen.len(), 1);
        assert_eq!(candidates[chosen[0]].group.members, vec![1, 2]);
    }

    #[test]
    fn exact_choice_beats_the_greedy_reference() {
        let candidates = blocking_candidates();
        let incumbent = Rtv::greedy_swap_reference(&candidates, 2);
        let group_candidates: Vec<lap::GroupCandidate> = candidates
            .iter()
            .map(|c| lap::GroupCandidate {
                vehicle: c.vehicle,
                requests: c.group.members.clone(),
                gain: c.gain,
            })
            .collect();
        let choice = lap::solve_group_choice(&group_candidates, &incumbent, Rtv::NODE_BUDGET);
        assert_eq!(choice.chosen, vec![0, 2], "the two singletons win");
        assert!((choice.gain - 291.0).abs() < 1e-9);
        assert!(choice.optimal);
    }

    #[test]
    fn exact_assignment_never_trails_the_reference() {
        // Deterministic LCG-generated candidate sets: across many shapes the
        // exact branch-and-bound's total gain must always be at least the
        // greedy+swap reference's (incumbent seeding makes this structural,
        // but the test guards the wiring).
        let mut state: u64 = 0x5eed_cafe;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..60 {
            let n = next(9) as usize;
            let candidates: Vec<TripCandidate> = (0..n)
                .map(|_| {
                    let vehicle = next(4) as usize;
                    let a = next(5) as RequestId;
                    let b = next(5) as RequestId;
                    let members = if a == b { vec![a] } else { vec![a, b] };
                    let gain = next(120) as f64 - 20.0;
                    trip(vehicle, members, gain)
                })
                .collect();
            let incumbent = Rtv::greedy_swap_reference(&candidates, 4);
            let reference_gain: f64 = incumbent.iter().map(|&i| candidates[i].gain).sum();
            let group_candidates: Vec<lap::GroupCandidate> = candidates
                .iter()
                .map(|c| lap::GroupCandidate {
                    vehicle: c.vehicle,
                    requests: c.group.members.clone(),
                    gain: c.gain,
                })
                .collect();
            let choice = lap::solve_group_choice(&group_candidates, &incumbent, Rtv::NODE_BUDGET);
            assert!(
                choice.gain >= reference_gain - 1e-9,
                "exact {} < reference {} on {:?}",
                choice.gain,
                reference_gain,
                candidates
                    .iter()
                    .map(|c| (c.vehicle, &c.group.members, c.gain))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn injected_deadline_budget_degrades_to_the_incumbent_and_counts_it() {
        use structride_core::{FaultConfig, StructRideConfig};
        // A 1-node budget on the greedy-blocking fixture trips before the
        // exact answer (291) can be proven: the commit stays at the seeded
        // incumbent — the pair trip with gain 288, the anytime floor.
        let candidates = blocking_candidates();
        let incumbent = Rtv::greedy_swap_reference(&candidates, 2);
        let group_candidates: Vec<lap::GroupCandidate> = candidates
            .iter()
            .map(|c| lap::GroupCandidate {
                vehicle: c.vehicle,
                requests: c.group.members.clone(),
                gain: c.gain,
            })
            .collect();
        let choice = lap::solve_group_choice(&group_candidates, &incumbent, 1);
        assert!(!choice.optimal, "a 1-node budget cannot prove optimality");
        assert!((choice.gain - 288.0).abs() < 1e-9, "incumbent floor holds");
        // The dispatch path reads the same budget from the fault config in
        // the context, and SolverStats counts one fallback exactly when the
        // solve lost its optimality proof.
        let engine = line_engine(6);
        let requests = vec![req(1, 0, 4, 40.0, 1.6), req(2, 1, 3, 40.0, 1.6)];
        let config = StructRideConfig::default().with_faults(FaultConfig {
            solver_node_budget: 1,
            ..FaultConfig::default()
        });
        let mut vehicles = vec![Vehicle::new(0, 0, 4), Vehicle::new(1, 1, 4)];
        let degraded_ctx = DispatchContext::new(&engine, config, 0.0);
        let mut rtv = Rtv::default();
        let out = rtv.dispatch_batch(&degraded_ctx, &mut vehicles, &requests);
        let solver = out.solver.expect("telemetry");
        assert_eq!(solver.fallbacks, u64::from(!solver.optimal));
        // Whatever the degraded mode committed is feasible — the incumbent
        // floor, never a dropped batch.
        for v in &vehicles {
            if !v.schedule.is_empty() {
                assert!(v.evaluate_current(&engine).feasible);
            }
        }
        // Without the injected budget the same batch is exact and reports
        // zero fallbacks — the inert default changes nothing.
        let mut vehicles = vec![Vehicle::new(0, 0, 4), Vehicle::new(1, 1, 4)];
        let mut exact = Rtv::default();
        let out = exact.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        let solver = out.solver.expect("telemetry");
        assert!(solver.optimal);
        assert_eq!(solver.fallbacks, 0);
    }

    #[test]
    fn memory_reflects_rtv_graph_size() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let mut rtv = Rtv::default();
        let requests: Vec<Request> = (0..5)
            .map(|i| req(i, i % 3, (i % 3) + 2, 20.0, 2.0))
            .collect();
        rtv.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert!(rtv.memory_bytes() > 512);
    }
}
