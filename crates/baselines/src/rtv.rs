//! RTV — trip-vehicle assignment (Alonso-Mora et al. [27]).
//!
//! The original method builds, per batch, the RV graph (which requests each
//! vehicle can serve and which request pairs are shareable), expands it into
//! the RTV graph of feasible *trips* per vehicle, and solves an integer linear
//! program that assigns at most one trip per vehicle and at most one vehicle
//! per request, minimising travel cost plus penalties for unassigned requests.
//!
//! This reproduction keeps the expensive part — the per-vehicle trip
//! enumeration over pairwise-shareable requests — and replaces the glpk ILP
//! with a deterministic greedy assignment followed by pairwise-swap local
//! search over the same candidate set (documented in `DESIGN.md` §4).  At the
//! reproduced batch sizes the greedy+swap solution coincides with or closely
//! tracks the ILP optimum, preserving RTV's qualitative position in the
//! paper's figures: better quality than the online methods, far slower than
//! SARD.

use std::collections::{HashMap, HashSet};
use structride_core::{
    enumerate_groups, BatchOutcome, CandidateGroup, DispatchContext, Dispatcher,
};
use structride_model::{Request, RequestId, Vehicle};
use structride_sharegraph::{pairwise_shareable, ShareabilityGraph};

/// One candidate assignment: a trip (request group) served by a vehicle.
#[derive(Debug, Clone)]
struct TripCandidate {
    vehicle: usize,
    group: CandidateGroup,
    /// Net objective gain of taking this trip: avoided penalties minus the
    /// added travel cost (larger is better).
    gain: f64,
}

/// The RTV batch dispatcher.
#[derive(Debug)]
pub struct Rtv {
    /// Penalty coefficient used in the assignment objective (the same `p_r`
    /// the unified cost uses).
    penalty_coefficient: f64,
    /// Pool of requests carried across batches.
    pending: HashMap<RequestId, Request>,
    /// Peak number of trip candidates (memory accounting, Fig. 14 — the RTV
    /// graph is by far the largest structure among the tested methods).
    peak_candidates: usize,
}

impl Rtv {
    /// Creates the dispatcher with the given penalty coefficient.
    pub fn new(penalty_coefficient: f64) -> Self {
        Rtv {
            penalty_coefficient,
            pending: HashMap::new(),
            peak_candidates: 0,
        }
    }

    /// Number of requests currently waiting in the pool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Greedy assignment + pairwise improvement over the trip candidates.
    fn solve_assignment(candidates: &[TripCandidate], n_vehicles: usize) -> Vec<usize> {
        // Greedy: take candidates by descending gain, respecting vehicle and
        // request exclusivity.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            candidates[b]
                .gain
                .partial_cmp(&candidates[a].gain)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut vehicle_used = vec![false; n_vehicles];
        let mut request_used: HashSet<RequestId> = HashSet::new();
        let mut chosen: Vec<usize> = Vec::new();
        for idx in order {
            let c = &candidates[idx];
            if c.gain <= 0.0 {
                continue;
            }
            if vehicle_used[c.vehicle] {
                continue;
            }
            if c.group.members.iter().any(|r| request_used.contains(r)) {
                continue;
            }
            vehicle_used[c.vehicle] = true;
            request_used.extend(c.group.members.iter().copied());
            chosen.push(idx);
        }
        // One pass of pairwise improvement: try replacing each chosen trip by
        // an unchosen one on the same vehicle that frees/serves requests with
        // a better total gain.  (A stand-in for the ILP's global optimality.)
        let mut improved = true;
        let mut guard = 0;
        while improved && guard < 8 {
            improved = false;
            guard += 1;
            for (pos, &chosen_idx) in chosen.clone().iter().enumerate() {
                let current = &candidates[chosen_idx];
                for (alt_idx, alt) in candidates.iter().enumerate() {
                    if alt.vehicle != current.vehicle || alt_idx == chosen_idx {
                        continue;
                    }
                    // Requests of the alternative must be free apart from the
                    // ones the current trip already holds.
                    let current_members: HashSet<RequestId> =
                        current.group.members.iter().copied().collect();
                    let conflict = alt
                        .group
                        .members
                        .iter()
                        .any(|r| !current_members.contains(r) && request_used.contains(r));
                    if conflict {
                        continue;
                    }
                    if alt.gain > current.gain + 1e-9 {
                        // Swap.
                        for r in &current.group.members {
                            request_used.remove(r);
                        }
                        request_used.extend(alt.group.members.iter().copied());
                        chosen[pos] = alt_idx;
                        improved = true;
                        break;
                    }
                }
            }
        }
        chosen
    }
}

impl Default for Rtv {
    fn default() -> Self {
        Self::new(10.0)
    }
}

impl Dispatcher for Rtv {
    fn name(&self) -> &'static str {
        "RTV"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let engine = ctx.engine;
        let now = ctx.now;
        for r in new_requests {
            self.pending.insert(r.id, r.clone());
        }
        self.pending.retain(|_, r| !r.is_expired(now));
        if self.pending.is_empty() || vehicles.is_empty() {
            return BatchOutcome::empty();
        }

        let pool_ids: Vec<RequestId> = {
            let mut ids: Vec<RequestId> = self.pending.keys().copied().collect();
            ids.sort_unstable();
            ids
        };

        // --- RV graph: pairwise-shareable requests (no angle pruning). -----
        let max_capacity = vehicles.iter().map(|v| v.capacity).max().unwrap_or(4);
        let mut rv = ShareabilityGraph::new();
        for &id in &pool_ids {
            rv.add_node(id);
        }
        for i in 0..pool_ids.len() {
            for j in (i + 1)..pool_ids.len() {
                let a = &self.pending[&pool_ids[i]];
                let b = &self.pending[&pool_ids[j]];
                if pairwise_shareable(engine, a, b, max_capacity) {
                    rv.add_edge(a.id, b.id);
                }
            }
        }

        // --- RTV graph: feasible trips per vehicle. -------------------------
        let mut candidates: Vec<TripCandidate> = Vec::new();
        for (vi, vehicle) in vehicles.iter().enumerate() {
            let groups = enumerate_groups(
                ctx,
                &rv,
                &self.pending,
                &pool_ids,
                vehicle,
                vehicle.capacity as usize,
            );
            for group in groups {
                let gain = self.penalty_coefficient * group.members_direct_cost - group.added_cost;
                candidates.push(TripCandidate {
                    vehicle: vi,
                    group,
                    gain,
                });
            }
        }
        self.peak_candidates = self.peak_candidates.max(candidates.len());

        // --- assignment (ILP substitute). -----------------------------------
        let chosen = Self::solve_assignment(&candidates, vehicles.len());
        let mut outcome = BatchOutcome::empty();
        for idx in chosen {
            let c = &candidates[idx];
            vehicles[c.vehicle].commit_schedule(c.group.schedule.clone());
            for rid in &c.group.members {
                self.pending.remove(rid);
                outcome.assigned.push(*rid);
            }
        }
        outcome.assigned.sort_unstable();
        outcome
    }

    fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn memory_bytes(&self) -> usize {
        // The RTV graph (trip candidates, each holding a schedule) dominates —
        // the paper reports RTV using a multiple of the other methods' memory.
        self.pending.capacity() * (std::mem::size_of::<Request>() + 16) + self.peak_candidates * 512
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, line_engine, req};

    #[test]
    fn assigns_shareable_requests_to_one_vehicle() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4), Vehicle::new(1, 5, 4)];
        let requests = vec![req(1, 0, 4, 40.0, 1.6), req(2, 1, 3, 20.0, 1.6)];
        let mut rtv = Rtv::default();
        let out = rtv.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert_eq!(out.assigned, vec![1, 2]);
        // Both requests ride the vehicle that starts at their corridor.
        assert!(vehicles[0].schedule.contains_request(1));
        assert!(vehicles[0].schedule.contains_request(2));
        assert!(vehicles[1].schedule.is_empty());
    }

    #[test]
    fn each_request_and_vehicle_used_at_most_once() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 2), Vehicle::new(1, 2, 2)];
        let requests = vec![
            req(1, 0, 3, 30.0, 1.6),
            req(2, 1, 4, 30.0, 1.6),
            req(3, 2, 5, 30.0, 1.6),
            req(4, 3, 5, 20.0, 1.6),
        ];
        let mut rtv = Rtv::default();
        let out = rtv.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        // No duplicates among assigned requests.
        let mut ids = out.assigned.clone();
        ids.dedup();
        assert_eq!(ids.len(), out.assigned.len());
        // Each assigned request sits in exactly one schedule.
        for id in &out.assigned {
            let holders = vehicles
                .iter()
                .filter(|v| v.schedule.contains_request(*id))
                .count();
            assert_eq!(holders, 1);
        }
        // Feasibility of all committed schedules.
        for v in &vehicles {
            if !v.schedule.is_empty() {
                assert!(v.evaluate_current(&engine).feasible);
            }
        }
    }

    #[test]
    fn pending_pool_carries_and_expires() {
        let engine = line_engine(6);
        let mut rtv = Rtv::default();
        // Nothing can be served without vehicles.
        let r = req(1, 0, 2, 20.0, 2.0);
        let out = rtv.dispatch_batch(&ctx(&engine, 0.0), &mut [], &[r]);
        assert!(out.assigned.is_empty());
        assert_eq!(rtv.pending_len(), 1);
        // After its pickup deadline the request silently leaves the pool.
        let out = rtv.dispatch_batch(&ctx(&engine, 10_000.0), &mut [], &[]);
        assert!(out.assigned.is_empty());
        assert_eq!(rtv.pending_len(), 0);
    }

    #[test]
    fn assignment_prefers_higher_gain_trips() {
        // Two candidates on the same vehicle: the solver keeps the better one.
        let group = |members: Vec<RequestId>, direct: f64, added: f64| CandidateGroup {
            members,
            schedule: structride_model::Schedule::new(),
            travel_cost: added,
            added_cost: added,
            members_direct_cost: direct,
        };
        let candidates = vec![
            TripCandidate {
                vehicle: 0,
                group: group(vec![1], 10.0, 5.0),
                gain: 95.0,
            },
            TripCandidate {
                vehicle: 0,
                group: group(vec![1, 2], 30.0, 12.0),
                gain: 288.0,
            },
            TripCandidate {
                vehicle: 1,
                group: group(vec![2], 20.0, 4.0),
                gain: 196.0,
            },
        ];
        let chosen = Rtv::solve_assignment(&candidates, 2);
        // The pair on vehicle 0 dominates; vehicle 1 must not also take r2.
        assert_eq!(chosen.len(), 1);
        assert_eq!(candidates[chosen[0]].group.members, vec![1, 2]);
    }

    #[test]
    fn memory_reflects_rtv_graph_size() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let mut rtv = Rtv::default();
        let requests: Vec<Request> = (0..5)
            .map(|i| req(i, i % 3, (i % 3) + 2, 20.0, 2.0))
            .collect();
        rtv.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert!(rtv.memory_bytes() > 512);
    }
}
