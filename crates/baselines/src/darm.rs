//! Demand-aware repositioning — the stand-in for DARM+DPRS [53].
//!
//! The paper's DARM+DPRS baseline uses deep reinforcement learning to move
//! idle vehicles toward anticipated high-demand areas and to match requests.
//! A learned policy cannot be reproduced faithfully without the authors'
//! training pipeline, so this dispatcher substitutes the interpretable core of
//! the idea (documented in `DESIGN.md` §4):
//!
//! * demand per grid cell is tracked with an exponentially weighted moving
//!   average of recent request origins (the "prediction");
//! * arriving requests are matched greedily by cheapest insertion (as in the
//!   online baselines);
//! * after matching, idle vehicles are *repositioned* toward the hottest cells,
//!   which costs real (dead-head) travel — reproducing the qualitative
//!   signature the paper reports: competitive service at small request volumes,
//!   extra travel cost and degradation at larger volumes/state spaces.

use structride_core::{BatchOutcome, DispatchContext, Dispatcher};
use structride_model::{insertion, InsertionOutcome, Request, Vehicle};
use structride_roadnet::{NodeId, SpEngine};
use structride_spatial::GridIndex;

/// The demand-aware repositioning dispatcher (DARM+DPRS substitute).
#[derive(Debug)]
pub struct DemandRepositioning {
    /// EWMA decay per batch for the per-cell demand estimate.
    decay: f64,
    /// Number of grid cells per side of the demand map.
    cells_per_side: u32,
    /// Fraction of idle vehicles repositioned each batch.
    reposition_fraction: f64,
    /// Per-cell demand estimate (lazily sized on first batch).
    demand: Vec<f64>,
    /// A representative node per cell for repositioning targets.
    cell_anchor: Vec<Option<NodeId>>,
    /// Extra dead-head travel incurred by repositioning moves.
    repositioning_travel: f64,
    initialised: bool,
}

impl DemandRepositioning {
    /// Creates the dispatcher with sensible defaults (32×32 demand map, 0.5
    /// decay, 30 % of idle vehicles repositioned per batch).
    pub fn new() -> Self {
        DemandRepositioning {
            decay: 0.5,
            cells_per_side: 32,
            reposition_fraction: 0.3,
            demand: Vec::new(),
            cell_anchor: Vec::new(),
            repositioning_travel: 0.0,
            initialised: false,
        }
    }

    /// Total dead-head travel caused by repositioning decisions so far.
    pub fn repositioning_travel(&self) -> f64 {
        self.repositioning_travel
    }

    fn init(&mut self, engine: &SpEngine) {
        if self.initialised {
            return;
        }
        let n_cells = (self.cells_per_side * self.cells_per_side) as usize;
        self.demand = vec![0.0; n_cells];
        self.cell_anchor = vec![None; n_cells];
        let grid = self.coordinate_grid(engine);
        for node in engine.network().nodes() {
            let p = engine.coord(node);
            let cell = grid.cell_of(p.x, p.y) as usize;
            if self.cell_anchor[cell].is_none() {
                self.cell_anchor[cell] = Some(node);
            }
        }
        self.initialised = true;
    }

    fn coordinate_grid(&self, engine: &SpEngine) -> GridIndex {
        let net = engine.network();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in net.nodes() {
            let p = net.coord(v);
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        GridIndex::new(
            min_x,
            min_y,
            max_x.max(min_x + 1.0),
            max_y.max(min_y + 1.0),
            self.cells_per_side,
        )
    }

    /// The cell with the highest demand estimate that has an anchor node.
    fn hottest_cell(&self) -> Option<usize> {
        self.demand
            .iter()
            .enumerate()
            .filter(|(i, _)| self.cell_anchor[*i].is_some())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .filter(|(_, &d)| d > 0.0)
            .map(|(i, _)| i)
    }
}

impl Default for DemandRepositioning {
    fn default() -> Self {
        Self::new()
    }
}

impl Dispatcher for DemandRepositioning {
    fn name(&self) -> &'static str {
        "DARM+DPRS"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let engine = ctx.engine;
        let now = ctx.now;
        self.init(engine);
        let grid = self.coordinate_grid(engine);

        // Update the demand prediction with this batch's origins.
        for d in self.demand.iter_mut() {
            *d *= self.decay;
        }
        for r in new_requests {
            let p = engine.coord(r.source);
            let cell = grid.cell_of(p.x, p.y) as usize;
            self.demand[cell] += 1.0;
        }

        // Greedy matching (cheapest insertion), as in the online baselines.
        let mut outcome = BatchOutcome::empty();
        for request in new_requests {
            let mut best: Option<(usize, InsertionOutcome)> = None;
            for (vi, vehicle) in vehicles.iter().enumerate() {
                if let Some(out) = insertion::insert_request(engine, vehicle, request) {
                    let better = best
                        .as_ref()
                        .map(|(_, b)| out.added_cost < b.added_cost)
                        .unwrap_or(true);
                    if better {
                        best = Some((vi, out));
                    }
                }
            }
            if let Some((vi, out)) = best {
                vehicles[vi].commit_schedule(out.schedule);
                outcome.assigned.push(request.id);
            }
        }

        // Reposition a fraction of the idle vehicles toward the hottest cell.
        if let Some(hot) = self.hottest_cell() {
            let target = self.cell_anchor[hot].expect("hot cell has an anchor");
            let mut moved = 0usize;
            let idle_count = vehicles.iter().filter(|v| v.is_idle()).count();
            let budget = ((idle_count as f64) * self.reposition_fraction).ceil() as usize;
            for vehicle in vehicles.iter_mut() {
                if moved >= budget {
                    break;
                }
                if !vehicle.is_idle() || vehicle.node == target {
                    continue;
                }
                let cost = engine.cost(vehicle.node, target);
                if !cost.is_finite() {
                    continue;
                }
                // The dead-head move is executed immediately: the vehicle will
                // be at the hot spot (and unavailable) until it arrives.
                vehicle.executed_travel += cost;
                self.repositioning_travel += cost;
                vehicle.node = target;
                vehicle.free_at = vehicle.free_at.max(now) + cost;
                moved += 1;
            }
        }
        outcome
    }

    fn memory_bytes(&self) -> usize {
        // The demand map and anchors constitute the "model state".
        self.demand.capacity() * 8 + self.cell_anchor.capacity() * 8 + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, line_engine, req};

    #[test]
    fn matches_requests_like_a_greedy_baseline() {
        let engine = line_engine(10);
        let mut vehicles = vec![Vehicle::new(0, 0, 4), Vehicle::new(1, 9, 4)];
        let mut darm = DemandRepositioning::new();
        let out = darm.dispatch_batch(
            &ctx(&engine, 0.0),
            &mut vehicles,
            &[req(1, 1, 3, 20.0, 2.0)],
        );
        assert_eq!(out.assigned, vec![1]);
        assert!(vehicles[0].schedule.contains_request(1));
    }

    #[test]
    fn repositions_idle_vehicles_toward_demand() {
        let engine = line_engine(10);
        // Vehicle 1 stays idle far from the demand concentrated at node 8.
        let mut vehicles = vec![Vehicle::new(0, 8, 4), Vehicle::new(1, 0, 4)];
        let mut darm = DemandRepositioning::new();
        // Several batches of demand near node 8 that vehicle 0 absorbs.
        for batch in 0..3u32 {
            let r = req(10 + batch, 8, 9, 10.0, 2.0);
            darm.dispatch_batch(&ctx(&engine, batch as f64 * 5.0), &mut vehicles, &[r]);
        }
        // The idle vehicle 1 was eventually pulled toward the hot area and the
        // dead-head travel was accounted for.
        assert!(darm.repositioning_travel() > 0.0);
        assert!(
            vehicles[1].node >= 5,
            "vehicle 1 moved toward the demand hotspot"
        );
        assert!(vehicles[1].executed_travel > 0.0);
    }

    #[test]
    fn no_demand_means_no_repositioning() {
        let engine = line_engine(10);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let mut darm = DemandRepositioning::new();
        let out = darm.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &[]);
        assert!(out.assigned.is_empty());
        assert_eq!(darm.repositioning_travel(), 0.0);
        assert_eq!(vehicles[0].node, 0);
        assert!(darm.memory_bytes() > 0);
    }
}
