//! GAS — the additive-tree batch baseline (Zeng et al. [33]).
//!
//! Per batch, GAS considers the pooled requests (new plus carried-over) and
//! lets every vehicle — visited in a seeded random order, as in the paper —
//! enumerate its feasible request groups with the additive tree and grab the
//! most *profitable* one, where profit is the total direct length of the
//! served requests (ties broken by smaller added travel cost).  Unlike SARD it
//! neither prunes combinations with the shareability graph nor reasons about
//! the structure left behind, which is why it enumerates far more candidates
//! (slower) and achieves slightly lower service rates in the paper.

use crate::complete_graph;
use std::collections::HashMap;
use structride_core::{
    enumerate_groups, BatchOutcome, DispatchContext, Dispatcher, PendingSnapshot,
};
use structride_model::{Request, RequestId, Vehicle};

/// The GAS batch dispatcher.
#[derive(Debug)]
pub struct Gas {
    /// Requests waiting to be assigned (the pool carried across batches).
    pending: HashMap<RequestId, Request>,
    /// Seed for the random vehicle visiting order.
    seed: u64,
    /// Peak number of enumerated groups (memory accounting for Fig. 14).
    peak_groups: usize,
}

impl Gas {
    /// Creates the dispatcher with the given ordering seed.
    pub fn new(seed: u64) -> Self {
        Gas {
            pending: HashMap::new(),
            seed,
            peak_groups: 0,
        }
    }

    /// Number of requests currently waiting in the pool.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// A deterministic pseudo-random permutation of `0..n` (xorshift-based
    /// Fisher–Yates) — enough randomness for the batch ordering without
    /// pulling a full RNG dependency into the baseline.
    fn vehicle_order(&mut self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = self.seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state as usize) % (i + 1);
            order.swap(i, j);
        }
        self.seed = state;
        order
    }
}

impl Default for Gas {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

impl Dispatcher for Gas {
    fn name(&self) -> &'static str {
        "GAS"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let now = ctx.now;
        // Pool maintenance: add the batch, drop expired requests.
        for r in new_requests {
            self.pending.insert(r.id, r.clone());
        }
        self.pending.retain(|_, r| !r.is_expired(now));
        if self.pending.is_empty() || vehicles.is_empty() {
            return BatchOutcome::empty();
        }

        let mut outcome = BatchOutcome::empty();
        let order = self.vehicle_order(vehicles.len());
        for vi in order {
            if self.pending.is_empty() {
                break;
            }
            let mut pool_ids: Vec<RequestId> = {
                let mut ids: Vec<RequestId> = self.pending.keys().copied().collect();
                ids.sort_unstable();
                ids
            };
            let vehicle = &vehicles[vi];
            if let Some(index) = ctx.fleet_index {
                // Certified prescreen: a request whose pickup deadline cannot
                // be met even at the network-wide fastest speed from the
                // vehicle's position would fail level-1 insertion feasibility
                // anyway, so dropping it leaves the enumerated groups — and
                // their count — unchanged.
                let min_tpm = index.min_time_per_meter();
                if min_tpm > 0.0 {
                    let network = ctx.engine.network();
                    let vp = network.coord(vehicle.node);
                    let before = pool_ids.len();
                    pool_ids.retain(|rid| {
                        let r = &self.pending[rid];
                        let dist = network.coord(r.source).distance(&vp);
                        vehicle.free_at + min_tpm * dist
                            <= r.pickup_deadline + structride_core::REACH_GRACE
                    });
                    ctx.scratch
                        .count_prescreen_pruned((before - pool_ids.len()) as u64);
                }
            }
            // The additive tree enumerates all combinations; the complete graph
            // disables clique pruning so only schedule feasibility filters.
            let graph = complete_graph(&pool_ids);
            let groups = enumerate_groups(
                ctx,
                &graph,
                &self.pending,
                &pool_ids,
                vehicle,
                vehicle.capacity as usize,
            );
            self.peak_groups = self.peak_groups.max(groups.len());
            // Profit = total direct length of the served requests.
            let best = groups.into_iter().max_by(|a, b| {
                a.members_direct_cost
                    .partial_cmp(&b.members_direct_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        b.added_cost
                            .partial_cmp(&a.added_cost)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            });
            if let Some(best) = best {
                vehicles[vi].commit_schedule(best.schedule.clone());
                for rid in &best.members {
                    self.pending.remove(rid);
                    outcome.assigned.push(*rid);
                }
            }
        }
        outcome.assigned.sort_unstable();
        outcome
    }

    fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    fn memory_bytes(&self) -> usize {
        // The pool plus the peak additive-tree size (groups hold a schedule of
        // a handful of way-points each).
        self.pending.capacity() * (std::mem::size_of::<Request>() + 16) + self.peak_groups * 256
    }

    fn take_pending(&mut self) -> Vec<Request> {
        let mut pool: Vec<Request> = self.pending.drain().map(|(_, r)| r).collect();
        pool.sort_unstable_by_key(|r| r.id);
        pool
    }

    fn restore_pending(&mut self, pool: Vec<Request>) {
        for r in pool {
            self.pending.insert(r.id, r);
        }
    }

    fn checkpoint_pending(&self) -> PendingSnapshot {
        let mut pool: Vec<Request> = self.pending.values().cloned().collect();
        pool.sort_unstable_by_key(|r| r.id);
        PendingSnapshot {
            pool,
            edges: Vec::new(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: PendingSnapshot) {
        for r in snapshot.pool {
            self.pending.insert(r.id, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, line_engine, req};

    #[test]
    fn picks_the_most_profitable_group() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        // A long request plus a compatible short one versus a lone medium one:
        // the pair has the larger total length, so GAS serves the pair.
        let requests = vec![
            req(1, 0, 5, 50.0, 1.8),
            req(2, 1, 4, 30.0, 1.8),
            req(3, 5, 2, 30.0, 1.1),
        ];
        let mut gas = Gas::default();
        let out = gas.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert!(out.assigned.contains(&1));
        assert!(out.assigned.contains(&2));
        // Request 3 (reverse direction, tight deadline) stays pending.
        assert!(!out.assigned.contains(&3));
        assert_eq!(gas.pending_len(), 1);
    }

    #[test]
    fn pending_requests_retry_and_expire() {
        let engine = line_engine(6);
        // No vehicles at all: everything stays pending.
        let mut gas = Gas::default();
        let r = req(1, 0, 2, 20.0, 2.0);
        let out = gas.dispatch_batch(&ctx(&engine, 0.0), &mut [], std::slice::from_ref(&r));
        assert!(out.assigned.is_empty());
        assert_eq!(gas.pending_len(), 1);
        // Later, with a vehicle and before expiry, the request is served.
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let out = gas.dispatch_batch(&ctx(&engine, 5.0), &mut vehicles, &[]);
        assert_eq!(out.assigned, vec![1]);
        assert_eq!(gas.pending_len(), 0);
        // Expired requests are silently dropped from the pool.
        let stale = req(2, 0, 2, 20.0, 1.5);
        let out = gas.dispatch_batch(&ctx(&engine, 10_000.0), &mut vehicles, &[stale]);
        assert!(out.assigned.is_empty());
        assert_eq!(gas.pending_len(), 0);
    }

    #[test]
    fn vehicle_order_is_a_permutation() {
        let mut gas = Gas::new(7);
        let order = gas.vehicle_order(10);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        // Subsequent calls reshuffle.
        let order2 = gas.vehicle_order(10);
        let mut sorted2 = order2.clone();
        sorted2.sort_unstable();
        assert_eq!(sorted2, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn memory_grows_with_enumeration() {
        let engine = line_engine(6);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let mut gas = Gas::default();
        let base = gas.memory_bytes();
        let requests: Vec<Request> = (0..5)
            .map(|i| req(i, i % 3, (i % 3) + 2, 20.0, 2.0))
            .collect();
        gas.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert!(gas.memory_bytes() > base);
    }
}
