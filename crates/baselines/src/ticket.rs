//! TicketAssign+ — parallel online insertion with per-vehicle ticket locks
//! (Pan & Li [54]).
//!
//! Several worker threads process the batch's requests concurrently.  Each
//! thread computes the cheapest feasible insertion across the fleet and then
//! "takes a ticket" on the chosen vehicle (a per-vehicle mutex): if the
//! vehicle's schedule changed since the evaluation, the thread re-evaluates
//! against the fresh state and either commits or falls back to the next-best
//! vehicle.  This reproduces the paper's observation that TicketAssign+
//! improves on pruneGDP's service rate through simultaneous decision making,
//! at the price of contention overhead on the runtime side.

use parking_lot::Mutex;
use structride_core::{BatchOutcome, DispatchContext, Dispatcher};
use structride_model::{insertion, Request, RequestId, Vehicle};

/// The TicketAssign+ parallel online dispatcher.
#[derive(Debug)]
pub struct TicketAssignPlus {
    threads: usize,
    /// Number of ticket conflicts observed (re-evaluations after a lock).
    conflicts: std::sync::atomic::AtomicUsize,
}

impl TicketAssignPlus {
    /// Creates the dispatcher with the given worker-thread count (at least 1).
    pub fn new(threads: usize) -> Self {
        TicketAssignPlus {
            threads: threads.max(1),
            conflicts: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of ticket conflicts (commit-time re-evaluations) so far.
    pub fn conflicts(&self) -> usize {
        self.conflicts.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Default for TicketAssignPlus {
    fn default() -> Self {
        Self::new(4)
    }
}

/// Generation-stamped vehicle slot: the generation counter tells a committing
/// thread whether its evaluation is stale.
struct Slot<'a> {
    vehicle: &'a mut Vehicle,
    generation: u64,
}

impl Dispatcher for TicketAssignPlus {
    fn name(&self) -> &'static str {
        "TicketAssign+"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        vehicles: &mut [Vehicle],
        new_requests: &[Request],
    ) -> BatchOutcome {
        let engine = ctx.engine;
        if new_requests.is_empty() || vehicles.is_empty() {
            return BatchOutcome::empty();
        }
        let slots: Vec<Mutex<Slot<'_>>> = vehicles
            .iter_mut()
            .map(|v| {
                Mutex::new(Slot {
                    vehicle: v,
                    generation: 0,
                })
            })
            .collect();
        let assigned: Mutex<Vec<RequestId>> = Mutex::new(Vec::new());
        let conflicts = &self.conflicts;

        let chunk = new_requests.len().div_ceil(self.threads);
        crossbeam::scope(|scope| {
            for chunk_requests in new_requests.chunks(chunk.max(1)) {
                let slots = &slots;
                let assigned = &assigned;
                scope.spawn(move |_| {
                    for request in chunk_requests {
                        // Evaluate every vehicle under its ticket lock, keep a
                        // ranked list of feasible insertions.
                        let mut ranked: Vec<(f64, usize, u64)> = Vec::new();
                        for (vi, slot) in slots.iter().enumerate() {
                            let guard = slot.lock();
                            if let Some(out) =
                                insertion::insert_request(engine, guard.vehicle, request)
                            {
                                ranked.push((out.added_cost, vi, guard.generation));
                            }
                        }
                        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
                        // Try to commit to the cheapest vehicle; on a stale
                        // generation re-evaluate under the lock before falling
                        // through to the next candidate.
                        for (_, vi, seen_gen) in ranked {
                            let mut guard = slots[vi].lock();
                            if guard.generation != seen_gen {
                                conflicts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            if let Some(out) =
                                insertion::insert_request(engine, guard.vehicle, request)
                            {
                                guard.vehicle.commit_schedule(out.schedule);
                                guard.generation += 1;
                                assigned.lock().push(request.id);
                                break;
                            }
                        }
                    }
                });
            }
        })
        .expect("ticket workers never panic");

        let mut ids = assigned.into_inner();
        ids.sort_unstable();
        BatchOutcome {
            assigned: ids,
            solver: None,
        }
    }

    fn memory_bytes(&self) -> usize {
        // Per-vehicle ticket locks are the only extra state.
        std::mem::size_of::<Self>() + self.threads * std::mem::size_of::<Mutex<u64>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, line_engine, req};

    #[test]
    fn assigns_requests_in_parallel_without_violating_schedules() {
        let engine = line_engine(8);
        let mut vehicles: Vec<Vehicle> = (0..4).map(|i| Vehicle::new(i, i * 2, 4)).collect();
        let requests: Vec<Request> = (0..12)
            .map(|i| req(i, i % 6, (i % 6) + 2, 20.0, 2.0))
            .collect();
        let mut ticket = TicketAssignPlus::new(3);
        let out = ticket.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert!(!out.assigned.is_empty());
        // No request is assigned twice.
        let mut ids = out.assigned.clone();
        ids.dedup();
        assert_eq!(ids.len(), out.assigned.len());
        // Every committed schedule is feasible from the vehicle's state.
        for v in &vehicles {
            if !v.schedule.is_empty() {
                assert!(v.evaluate_current(&engine).feasible);
                assert!(v.schedule.is_well_formed());
            }
        }
        // Every assigned request appears in exactly one schedule.
        for id in &out.assigned {
            let holders = vehicles
                .iter()
                .filter(|v| v.schedule.contains_request(*id))
                .count();
            assert_eq!(holders, 1, "request {id} held by {holders} vehicles");
        }
    }

    #[test]
    fn single_thread_matches_sequential_greedy_semantics() {
        let engine = line_engine(8);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let requests = vec![req(1, 0, 4, 40.0, 1.6), req(2, 1, 3, 20.0, 1.6)];
        let mut ticket = TicketAssignPlus::new(1);
        let out = ticket.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &requests);
        assert_eq!(out.assigned, vec![1, 2]);
        assert!((vehicles[0].planned_cost(&engine) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let engine = line_engine(8);
        let mut vehicles = vec![Vehicle::new(0, 0, 4)];
        let mut ticket = TicketAssignPlus::default();
        let out = ticket.dispatch_batch(&ctx(&engine, 0.0), &mut vehicles, &[]);
        assert!(out.assigned.is_empty());
        assert_eq!(ticket.conflicts(), 0);
    }
}
