//! # StructRide
//!
//! An open-source Rust reproduction of *"StructRide: A Framework to Exploit
//! the Structure Information of Shareability Graph in Ridesharing"*
//! (ICDE 2025).  This facade crate re-exports the whole workspace so that
//! downstream users, the examples and the integration tests can depend on a
//! single crate:
//!
//! * [`roadnet`] — road network, Dijkstra, hub labeling, LRU-cached
//!   shortest-path engine;
//! * [`spatial`] — grid index and the angle geometry;
//! * [`model`] — requests, vehicles, schedules, linear insertion, kinetic
//!   tree, unified cost;
//! * [`sharegraph`] — the shareability graph, its dynamic builder with angle
//!   pruning, and the shareability loss;
//! * [`core`] — the per-batch [`DispatchContext`](prelude::DispatchContext),
//!   request grouping (Algorithm 2), the SARD dispatcher (Algorithm 3), the
//!   batched simulator and the run metrics;
//! * [`baselines`] — pruneGDP, TicketAssign+, GAS, RTV and the DARM-style
//!   repositioning baseline;
//! * [`datagen`] — synthetic CHD/NYC/Cainiao-like workload generators.
//!
//! ## The parallel batch pipeline
//!
//! Every batch-scoped hot path fans out across worker threads while staying
//! **deterministic** — the same inputs produce the same assignments and the
//! same shareability graph regardless of the worker count:
//!
//! * [`SpEngine`](prelude::SpEngine) shards its shortest-path LRU cache
//!   (16 ways by default), so concurrent `cost()` queries from dispatch
//!   workers don't serialise on a global lock;
//! * [`ShareabilityGraphBuilder`](prelude::ShareabilityGraphBuilder)
//!   par-maps the exact pairwise shareability checks of Algorithm 1 over the
//!   prefiltered candidate list and inserts the discovered edges in
//!   sequential order (bit-identical to its `add_batch_sequential` reference
//!   path);
//! * [`SardDispatcher`](prelude::SardDispatcher) par-maps its per-request
//!   candidate-queue construction and the per-vehicle group enumeration of
//!   each acceptance round, reducing with stable `(cost, vehicle_id)`
//!   tie-breaks;
//! * the [`Simulator`](prelude::Simulator) moves vehicles between batches in
//!   parallel and hands each batch to the dispatcher through a
//!   [`DispatchContext`](prelude::DispatchContext) — the engine + config +
//!   clock + scratch-counter bundle whose module docs state the parallel
//!   invariants dispatchers must preserve.
//!
//! Set `RAYON_NUM_THREADS=1` to force the whole pipeline sequential.
//!
//! Determinism is *enforced* by the record/replay harness
//! ([`core::replay`](structride_core::replay)): the simulator can record
//! `(batch, fleet-state, outcome)` traces
//! ([`Simulator::run_recorded`](prelude::Simulator::run_recorded)) and
//! [`replay_trace`](structride_core::replay::replay_trace) diffs any
//! dispatcher against a recording batch-by-batch — CI replays a quickstart
//! trace under 1 and N worker threads and fails on any drift (see the
//! `replay` binary in `structride-bench`).
//!
//! ## Quickstart
//!
//! ```
//! use structride::prelude::*;
//!
//! // A small NYC-like synthetic workload.
//! let workload = Workload::generate(WorkloadParams {
//!     num_requests: 80,
//!     num_vehicles: 10,
//!     ..WorkloadParams::small(CityProfile::NycLike)
//! });
//!
//! // Dispatch it with SARD and with the online pruneGDP baseline.
//! let config = StructRideConfig::default();
//! let simulator = Simulator::new(config);
//! let mut sard = SardDispatcher::new(config);
//! let sard_run = simulator.run(
//!     &workload.engine,
//!     &workload.requests,
//!     workload.fresh_vehicles(),
//!     &mut sard,
//!     &workload.name,
//! );
//! let mut gdp = PruneGdp::new();
//! let gdp_run = simulator.run(
//!     &workload.engine,
//!     &workload.requests,
//!     workload.fresh_vehicles(),
//!     &mut gdp,
//!     &workload.name,
//! );
//! assert!(sard_run.metrics.service_rate() >= 0.0);
//! assert!(gdp_run.metrics.service_rate() <= 1.0);
//! ```

pub use structride_baselines as baselines;
pub use structride_core as core;
pub use structride_datagen as datagen;
pub use structride_model as model;
pub use structride_roadnet as roadnet;
pub use structride_sharegraph as sharegraph;
pub use structride_spatial as spatial;

pub mod prelude {
    //! The names most programs need, in one import.
    pub use structride_baselines::{DemandRepositioning, Gas, PruneGdp, Rtv, TicketAssignPlus};
    pub use structride_core::{
        diff_traces, region_strips_for, replay_trace, BatchOutcome, DispatchContext, Dispatcher,
        DriftReport, IngestConfig, IngestReport, IngestStats, RunMetrics, SardDispatcher,
        ShardDispatcher, ShardedIngestReport, ShardedReport, ShardedSimulator, ShardingConfig,
        SimulationReport, Simulator, StructRideConfig, Trace, TraceMeta, TraceRecorder,
    };
    pub use structride_datagen::{
        ArrivalProfile, ArrivalStream, ArrivalStreamParams, CityProfile, MultiRegionParams,
        MultiRegionWorkload, Workload, WorkloadParams,
    };
    pub use structride_model::{
        CostParams, Request, RequestId, Schedule, Vehicle, VehicleId, Waypoint, WaypointKind,
    };
    pub use structride_roadnet::{NodeId, Point, RoadNetwork, RoadNetworkBuilder, SpEngine};
    pub use structride_sharegraph::{
        AnglePruning, BuilderConfig, ShareabilityGraph, ShareabilityGraphBuilder,
    };
    pub use structride_spatial::{RegionGrid, RegionId};
}

use prelude::*;

/// The set of dispatchers compared throughout the paper's evaluation, freshly
/// constructed with the given configuration.
///
/// The returned order matches the legend order of the figures: RTV, pruneGDP,
/// DARM+DPRS, GAS, TicketAssign+, SARD.
pub fn standard_dispatcher_suite(config: StructRideConfig) -> Vec<Box<dyn Dispatcher>> {
    vec![
        Box::new(Rtv::new(config.cost.penalty_coefficient)),
        Box::new(PruneGdp::new()),
        Box::new(DemandRepositioning::new()),
        Box::new(Gas::default()),
        Box::new(TicketAssignPlus::default()),
        Box::new(SardDispatcher::new(config)),
    ]
}

/// Only the batch-based dispatchers (RTV, GAS, SARD) — the subset compared in
/// the batching-period experiment (Fig. 13).
pub fn batch_dispatcher_suite(config: StructRideConfig) -> Vec<Box<dyn Dispatcher>> {
    vec![
        Box::new(Rtv::new(config.cost.penalty_coefficient)),
        Box::new(Gas::default()),
        Box::new(SardDispatcher::new(config)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_members() {
        let config = StructRideConfig::default();
        let names: Vec<&str> = standard_dispatcher_suite(config)
            .iter()
            .map(|d| d.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "RTV",
                "pruneGDP",
                "DARM+DPRS",
                "GAS",
                "TicketAssign+",
                "SARD"
            ]
        );
        let batch: Vec<&str> = batch_dispatcher_suite(config)
            .iter()
            .map(|d| d.name())
            .collect();
        assert_eq!(batch, vec!["RTV", "GAS", "SARD"]);
    }
}
